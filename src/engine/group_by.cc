#include "engine/group_by.h"

#include <cstring>
#include <memory>

#include "common/macros.h"
#include "engine/key_encode.h"
#include "plan/scheduler.h"
#include "refresh/refresh.h"

namespace smoke {

namespace {

/// Composite group keys use the shared injective byte encoding.
inline std::string EncodeKey(const Table& in, const std::vector<int>& cols,
                             rid_t rid) {
  return EncodeRowKey(in, cols, rid);
}

}  // namespace

struct GroupByInternals {
  /// Creates a fresh handle with bound aggregate layout.
  static std::shared_ptr<GroupByHandle> MakeHandle(const Table& input,
                                                   const GroupBySpec& spec,
                                                   const CaptureOptions& opts) {
    auto h = std::make_shared<GroupByHandle>();
    h->key_cols_ = spec.keys;
    h->int_key_ =
        spec.keys.size() == 1 &&
        input.column(static_cast<size_t>(spec.keys[0])).type() ==
            DataType::kInt64;
    if (h->int_key_) h->int_key_col_ = spec.keys[0];
    h->layout_ = AggLayout(input, spec.aggs);
    size_t expected =
        opts.hints != nullptr && opts.hints->expected_groups > 0
            ? opts.hints->expected_groups
            : 64;
    h->int_map_ = IntKeyMap(expected);
    h->str_map_.reserve(expected);
    return h;
  }

  /// γht build phase. OnNewGroup(slot, rid); OnRow(slot, rid) — both must be
  /// inlineable functors (Smoke paths) or virtual-call shims (Phys paths).
  template <typename OnNewGroup, typename OnRow>
  static void Build(const Table& input, GroupByHandle* h,
                    OnNewGroup&& on_new, OnRow&& on_row) {
    const size_t n = input.num_rows();
    const size_t stride = h->layout_.stride();
    if (h->int_key_) {
      const int64_t* keys =
          input.column(static_cast<size_t>(h->int_key_col_)).ints().data();
      for (rid_t r = 0; r < n; ++r) {
        uint32_t fresh = static_cast<uint32_t>(h->counts_.size());
        uint32_t slot = h->int_map_.FindOrInsert(keys[r], fresh);
        if (slot == IntKeyMap::kNotFound) {
          slot = fresh;
          NewGroup(h, stride, r);
          on_new(slot, r);
        }
        h->layout_.Update(&h->agg_state_[slot * stride], r);
        ++h->counts_[slot];
        on_row(slot, r);
      }
    } else {
      for (rid_t r = 0; r < n; ++r) {
        std::string key = EncodeKey(input, h->key_cols_, r);
        uint32_t fresh = static_cast<uint32_t>(h->counts_.size());
        auto [it, inserted] = h->str_map_.emplace(std::move(key), fresh);
        uint32_t slot = it->second;
        if (inserted) {
          NewGroup(h, stride, r);
          on_new(slot, r);
        }
        h->layout_.Update(&h->agg_state_[slot * stride], r);
        ++h->counts_[slot];
        on_row(slot, r);
      }
    }
  }

  static void NewGroup(GroupByHandle* h, size_t stride, rid_t r) {
    h->agg_state_.resize(h->agg_state_.size() + stride);
    h->layout_.Init(&h->agg_state_[h->agg_state_.size() - stride]);
    h->first_rid_.push_back(r);
    h->counts_.push_back(0);
  }

  static std::vector<RidVec>& i_rids(GroupByHandle* h) { return h->i_rids_; }
  static int64_t IntKeyOf(const GroupByHandle& h, const Table& in, rid_t r) {
    return in.column(static_cast<size_t>(h.int_key_col_)).ints()[r];
  }
  static bool IsIntKey(const GroupByHandle& h) { return h.int_key_; }
  static rid_t FirstRid(const GroupByHandle* h, size_t g) {
    return h->first_rid_[g];
  }

  /// Probe-or-create for one row (refresh paths). Returns the slot and sets
  /// *created when a new group was added.
  static uint32_t FindOrCreate(GroupByHandle* h, const Table& in, rid_t r,
                               bool* created) {
    const size_t stride = h->layout_.stride();
    uint32_t fresh = static_cast<uint32_t>(h->counts_.size());
    *created = false;
    if (h->int_key_) {
      uint32_t slot = h->int_map_.FindOrInsert(IntKeyOf(*h, in, r), fresh);
      if (slot != IntKeyMap::kNotFound) return slot;
    } else {
      auto [it, inserted] =
          h->str_map_.emplace(EncodeKey(in, h->key_cols_, r), fresh);
      if (!inserted) return it->second;
    }
    NewGroup(h, stride, r);
    *created = true;
    return fresh;
  }

  static const std::vector<int>& KeyCols(const GroupByHandle* h) {
    return h->key_cols_;
  }

  // Parallel-merge access: the partition-merge step inserts merged groups
  // into the handle's key maps directly (engine/group_by.cc,
  // ParallelGroupBy below).
  static IntKeyMap& int_map(GroupByHandle* h) { return h->int_map_; }
  static std::unordered_map<std::string, uint32_t>& str_map(GroupByHandle* h) {
    return h->str_map_;
  }
  static std::vector<double>& agg_state(GroupByHandle* h) {
    return h->agg_state_;
  }
  static std::vector<rid_t>& first_rids(GroupByHandle* h) {
    return h->first_rid_;
  }

  static double* MutableAggState(GroupByHandle* h, uint32_t slot) {
    return &h->agg_state_[slot * h->layout_.stride()];
  }
  static void ReinitAggState(GroupByHandle* h, uint32_t slot) {
    h->layout_.Init(MutableAggState(h, slot));
  }
  static std::vector<uint32_t>& counts(GroupByHandle* h) {
    return h->counts_;
  }
  /// Re-binds the layout's compiled expressions to the table's current
  /// column payloads (appends may have reallocated them).
  static void RebindLayout(GroupByHandle* h, const Table& input) {
    h->layout_.Rebind(input);
  }
};

uint32_t GroupByHandle::Probe(const Table& input, rid_t rid) const {
  if (int_key_) {
    return int_map_.Find(
        input.column(static_cast<size_t>(int_key_col_)).ints()[rid]);
  }
  auto it = str_map_.find(EncodeKey(input, key_cols_, rid));
  return it == str_map_.end() ? IntKeyMap::kNotFound : it->second;
}

namespace {

Schema NormalOutputSchema(const Table& input, const GroupBySpec& spec,
                          const AggLayout& layout) {
  Schema s;
  for (int k : spec.keys) {
    s.AddField(input.schema().field(static_cast<size_t>(k)).name,
               input.schema().field(static_cast<size_t>(k)).type);
  }
  for (size_t i = 0; i < layout.num_aggs(); ++i) {
    s.AddField(layout.OutputField(i).name, layout.OutputField(i).type);
  }
  return s;
}

/// γ'agg output scan: one row per group slot, keys from each group's
/// representative rid, aggregates finalized from the handle's state arena.
void EmitGroupByOutput(GroupByResult* result, const Table& input,
                       const GroupBySpec& spec, GroupByHandle* h) {
  const size_t num_groups = h->num_groups();
  const size_t num_keys = spec.keys.size();
  result->output = Table(NormalOutputSchema(input, spec, h->layout()));
  result->output.Reserve(num_groups);
  std::vector<Column*> agg_cols;
  for (size_t i = 0; i < h->layout().num_aggs(); ++i) {
    agg_cols.push_back(&result->output.mutable_column(num_keys + i));
  }
  const auto& state = h->agg_state();
  const size_t stride = h->layout().stride();
  for (size_t g = 0; g < num_groups; ++g) {
    for (size_t k = 0; k < num_keys; ++k) {
      result->output.mutable_column(k).AppendFrom(
          input.column(static_cast<size_t>(spec.keys[k])),
          GroupByInternals::FirstRid(h, g));
    }
    h->layout().Finalize(&state[g * stride], &agg_cols);
  }
}

/// Partition-parallel group-by (kNone / kInject / kDefer).
///
/// The input splits into one contiguous partition per worker; each worker
/// runs a private γ'ht over its partition (thread-local hash table, agg
/// state, i_rids lineage buffers — absolute input rids). The partials then
/// merge into the retained global handle IN PARTITION ORDER: because
/// partitions are ordered, contiguous row ranges, first-encounter order over
/// the merge equals first-encounter order of the sequential scan, so group
/// slots — and with them the output rows and every lineage index — come out
/// identical to num_threads == 1. Per-group backward lists concatenate
/// partition contributions in partition order, preserving increasing-rid
/// order. Under kDefer only the merged hash table is built;
/// FinalizeDeferredGroupBy later probes it exactly as in the sequential
/// path.
GroupByResult GroupByExecParallel(const Table& input,
                                  const std::string& input_name,
                                  const GroupBySpec& spec,
                                  const CaptureOptions& opts,
                                  TaskScheduler* sched) {
  GroupByResult result;
  result.handle = GroupByInternals::MakeHandle(input, spec, opts);
  GroupByHandle* h = result.handle.get();
  const size_t n = input.num_rows();
  const bool inject = opts.mode == CaptureMode::kInject;
  const bool want_b = inject && opts.capture_backward;
  const bool want_f = inject && opts.capture_forward;
  const AggLayout& layout = h->layout();
  const size_t stride = layout.stride();
  const bool int_key = GroupByInternals::IsIntKey(*h);
  const std::vector<int>& key_cols = GroupByInternals::KeyCols(h);
  const int64_t* keys =
      int_key ? input.column(static_cast<size_t>(key_cols[0])).ints().data()
              : nullptr;

  const std::vector<Morsel> parts =
      MakePartitions(n, static_cast<size_t>(sched->num_threads()));
  const size_t np = parts.size();

  struct Partial {
    IntKeyMap int_map{64};
    std::unordered_map<std::string, uint32_t> str_map;
    std::vector<double> agg_state;
    std::vector<rid_t> first_rid;
    std::vector<uint32_t> counts;
    std::vector<RidVec> i_rids;       // want_b: absolute input rids
    std::vector<uint32_t> local_fw;   // want_f: partition row -> local slot
    std::vector<uint32_t> to_global;  // local slot -> merged slot
  };
  std::vector<Partial> partials(np);

  // ---- phase 1: per-partition γ'ht builds (parallel) ----
  sched->ParallelFor(np, [&](size_t p, size_t) {
    Partial& part = partials[p];
    const Morsel span = parts[p];
    if (want_f) part.local_fw.resize(span.rows());
    for (rid_t r = span.begin; r < span.end; ++r) {
      uint32_t fresh = static_cast<uint32_t>(part.counts.size());
      uint32_t slot;
      bool created = false;
      if (int_key) {
        slot = part.int_map.FindOrInsert(keys[r], fresh);
        if (slot == IntKeyMap::kNotFound) {
          slot = fresh;
          created = true;
        }
      } else {
        auto [it, inserted] =
            part.str_map.emplace(EncodeKey(input, key_cols, r), fresh);
        slot = it->second;
        created = inserted;
      }
      if (created) {
        part.agg_state.resize(part.agg_state.size() + stride);
        layout.Init(&part.agg_state[part.agg_state.size() - stride]);
        part.first_rid.push_back(r);
        part.counts.push_back(0);
        if (want_b) part.i_rids.emplace_back();
      }
      layout.Update(&part.agg_state[slot * stride], r);
      ++part.counts[slot];
      if (want_b) part.i_rids[slot].PushBack(r);
      if (want_f) part.local_fw[r - span.begin] = slot;
    }
  });

  // ---- phase 2: partition-order merge into the global handle ----
  auto& g_agg = GroupByInternals::agg_state(h);
  auto& g_first = GroupByInternals::first_rids(h);
  auto& g_counts = GroupByInternals::counts(h);
  auto& g_lists = GroupByInternals::i_rids(h);
  for (size_t p = 0; p < np; ++p) {
    Partial& part = partials[p];
    const size_t local_groups = part.counts.size();
    part.to_global.resize(local_groups);
    for (uint32_t ls = 0; ls < local_groups; ++ls) {
      const rid_t fr = part.first_rid[ls];
      uint32_t fresh = static_cast<uint32_t>(g_counts.size());
      uint32_t slot;
      bool created = false;
      if (int_key) {
        slot = GroupByInternals::int_map(h).FindOrInsert(keys[fr], fresh);
        if (slot == IntKeyMap::kNotFound) {
          slot = fresh;
          created = true;
        }
      } else {
        auto [it, inserted] = GroupByInternals::str_map(h).emplace(
            EncodeKey(input, key_cols, fr), fresh);
        slot = it->second;
        created = inserted;
      }
      if (created) {
        g_agg.insert(g_agg.end(),
                     part.agg_state.begin() +
                         static_cast<ptrdiff_t>(ls * stride),
                     part.agg_state.begin() +
                         static_cast<ptrdiff_t>((ls + 1) * stride));
        g_first.push_back(fr);
        g_counts.push_back(part.counts[ls]);
        if (want_b) g_lists.push_back(std::move(part.i_rids[ls]));
      } else {
        layout.Merge(&g_agg[slot * stride], &part.agg_state[ls * stride]);
        g_counts[slot] += part.counts[ls];
        if (want_b) {
          g_lists[slot].PushBackAll(part.i_rids[ls].data(),
                                    part.i_rids[ls].size());
        }
      }
      part.to_global[ls] = slot;
    }
  }

  // ---- phase 3: remap thread-local forward buffers to merged slots ----
  RidArray forward;
  if (want_f) {
    forward.assign(n, kInvalidRid);
    sched->ParallelFor(np, [&](size_t p, size_t) {
      Partial& part = partials[p];
      const Morsel span = parts[p];
      for (size_t i = 0; i < span.rows(); ++i) {
        forward[span.begin + i] = part.to_global[part.local_fw[i]];
      }
    });
  }

  // ---- γ'agg scan + lineage emission ----
  EmitGroupByOutput(&result, input, spec, h);
  if (opts.mode != CaptureMode::kNone) {
    TableLineage& lin = result.lineage.AddInput(input_name, &input);
    if (want_b) {
      lin.backward =
          LineageIndex::FromIndex(RidIndex::FromLists(std::move(g_lists)));
    }
    if (want_f) lin.forward = LineageIndex::FromArray(std::move(forward));
  }
  result.lineage.set_output_cardinality(h->num_groups());
  return result;
}

}  // namespace

GroupByResult GroupByExec(const Table& input, const std::string& input_name,
                          const GroupBySpec& spec,
                          const CaptureOptions& opts) {
  if (!spec.key_names.empty()) {
    // Name forms reaching the kernel directly (no PlanBuilder::Build pass)
    // resolve here; unknown names abort like Table::column(name).
    GroupBySpec resolved = spec;
    for (const std::string& name : resolved.key_names) {
      const int col = input.ColumnIndex(name);
      SMOKE_CHECK(col >= 0);
      resolved.keys.push_back(col);
    }
    resolved.key_names.clear();
    return GroupByExec(input, input_name, resolved, opts);
  }
  if (opts.WantsParallel()) {
    if (opts.scheduler != nullptr) {
      return GroupByExecParallel(input, input_name, spec, opts,
                                 opts.scheduler);
    }
    MorselScheduler local(opts.num_threads);
    return GroupByExecParallel(input, input_name, spec, opts, &local);
  }

  GroupByResult result;
  result.handle = GroupByInternals::MakeHandle(input, spec, opts);
  GroupByHandle* h = result.handle.get();
  const size_t n = input.num_rows();
  const CaptureMode mode = opts.mode;

  const bool phys = mode == CaptureMode::kPhysMem ||
                    mode == CaptureMode::kPhysBdb;
  const bool inject = mode == CaptureMode::kInject;
  const bool want_b = opts.capture_backward;
  const bool want_f = opts.capture_forward;

  RidArray forward;
  if (inject && want_f) forward.assign(n, kInvalidRid);

  // ---- γ'ht build phase ----
  if (inject && want_b) {
    auto& lists = GroupByInternals::i_rids(h);
    const CardinalityHints* hints = opts.hints;
    const bool tc = hints != nullptr && hints->have_per_key_counts &&
                    GroupByInternals::IsIntKey(*h);
    auto on_new = [&](uint32_t, rid_t r) {
      lists.emplace_back();
      if (tc) {
        auto it = hints->per_key_counts.find(
            GroupByInternals::IntKeyOf(*h, input, r));
        if (it != hints->per_key_counts.end()) {
          lists.back().Reserve(it->second);
        }
      }
    };
    if (want_f) {
      GroupByInternals::Build(input, h, on_new, [&](uint32_t slot, rid_t r) {
        lists[slot].PushBack(r);
        forward[r] = slot;
      });
    } else {
      GroupByInternals::Build(input, h, on_new, [&](uint32_t slot, rid_t r) {
        lists[slot].PushBack(r);
      });
    }
  } else if (inject) {  // forward only
    GroupByInternals::Build(
        input, h, [](uint32_t, rid_t) {},
        [&](uint32_t slot, rid_t r) { forward[r] = slot; });
  } else if (phys) {
    SMOKE_CHECK(opts.writer != nullptr);
    opts.writer->BeginCapture(n);
    LineageWriter* w = opts.writer;
    GroupByInternals::Build(
        input, h, [](uint32_t, rid_t) {},
        [&](uint32_t slot, rid_t r) { w->Emit(slot, r); });
  } else {
    // kNone, kDefer, kLogic*: plain build. Defer's extra state (the group's
    // output rid) is the slot itself — γagg emits groups in slot order.
    GroupByInternals::Build(input, h, [](uint32_t, rid_t) {},
                            [](uint32_t, rid_t) {});
  }

  // ---- γ'agg scan phase ----
  const size_t num_groups = h->num_groups();
  EmitGroupByOutput(&result, input, spec, h);

  if (phys) opts.writer->FinishCapture(num_groups);

  // ---- lineage index emission ----
  TableLineage* lin = nullptr;
  if (mode != CaptureMode::kNone) {
    lin = &result.lineage.AddInput(input_name, &input);
  }
  result.lineage.set_output_cardinality(num_groups);

  if (inject) {
    if (want_b) {
      lin->backward = LineageIndex::FromIndex(
          RidIndex::FromLists(std::move(GroupByInternals::i_rids(h))));
    }
    if (want_f) lin->forward = LineageIndex::FromArray(std::move(forward));
  }

  // Logic modes: materialize the denormalized annotated relation
  // (Perm's aggregation rewrite: Q ⋈ input on the group keys).
  if (mode == CaptureMode::kLogicRid || mode == CaptureMode::kLogicTup ||
      mode == CaptureMode::kLogicIdx) {
    Schema as;
    for (size_t i = 0; i < result.output.schema().num_fields(); ++i) {
      as.AddField(result.output.schema().field(i).name,
                  result.output.schema().field(i).type);
    }
    if (mode == CaptureMode::kLogicTup) {
      for (const auto& f : input.schema().fields()) {
        as.AddField("prov_" + f.name, f.type);
      }
    } else {
      as.AddField("prov_rid", DataType::kInt64);
    }
    Table annotated(as);
    annotated.Reserve(n);
    const size_t out_cols = result.output.num_columns();
    for (rid_t r = 0; r < n; ++r) {
      uint32_t slot = h->Probe(input, r);  // reuses the γht hash table
      SMOKE_DCHECK(slot != IntKeyMap::kNotFound);
      annotated.AppendRowFrom(result.output, slot);
      if (mode == CaptureMode::kLogicTup) {
        for (size_t c = 0; c < input.num_columns(); ++c) {
          annotated.mutable_column(out_cols + c)
              .AppendFrom(input.column(c), r);
        }
      } else {
        annotated.mutable_column(out_cols).AppendInt(r);
      }
    }

    if (mode == CaptureMode::kLogicIdx) {
      // Scan the annotated relation to build the same end-to-end indexes.
      RidIndex bw(num_groups);
      RidArray fw;
      if (want_f) fw.assign(n, kInvalidRid);
      const auto& ann = annotated.column(out_cols).ints();
      for (size_t row = 0; row < ann.size(); ++row) {
        rid_t r = static_cast<rid_t>(ann[row]);
        uint32_t slot = h->Probe(input, r);
        if (want_b) bw.Append(slot, r);
        if (want_f) fw[r] = slot;
      }
      if (want_b) lin->backward = LineageIndex::FromIndex(std::move(bw));
      if (want_f) lin->forward = LineageIndex::FromArray(std::move(fw));
    }
    result.annotated = std::move(annotated);
  }

  return result;
}

void FinalizeDeferredGroupBy(GroupByResult* result, const Table& input,
                             const CaptureOptions& opts) {
  GroupByHandle* h = result->handle.get();
  SMOKE_CHECK(h != nullptr);
  TableLineage* lin = nullptr;
  if (result->lineage.num_inputs() == 0) {
    lin = &result->lineage.AddInput("input", &input);
  } else {
    lin = &result->lineage.mutable_input(0);
  }
  if (!lin->backward.empty() || !lin->forward.empty()) return;  // already done

  const size_t n = input.num_rows();
  const size_t num_groups = h->num_groups();
  const bool want_b = opts.capture_backward;
  const bool want_f = opts.capture_forward;

  // Exact sizing from the counts collected during γ'ht (paper: "the
  // operator's input and output cardinalities are used to avoid resizing
  // costs during Zγ").
  RidIndex bw;
  RidArray fw;
  if (want_b) {
    bw.Resize(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      bw.list(g).Reserve(h->counts()[g]);
    }
  }
  if (want_f) fw.assign(n, kInvalidRid);

  if (opts.WantsParallel() && n > 0) {
    // Morsel-parallel Zγ: the retained hash table is probed read-only, so
    // partitions probe concurrently. Forward slots are disjoint writes;
    // backward lists are captured per partition and concatenated in
    // partition order, which is ascending rid order — bit-identical to the
    // sequential probe.
    TaskScheduler* sched = opts.scheduler;
    std::unique_ptr<MorselScheduler> local;
    if (sched == nullptr) {
      local = std::make_unique<MorselScheduler>(opts.num_threads);
      sched = local.get();
    }
    const std::vector<Morsel> parts =
        MakePartitions(n, static_cast<size_t>(sched->num_threads()));
    const size_t np = parts.size();
    std::vector<std::vector<RidVec>> part_bw(
        want_b ? np : 0, std::vector<RidVec>(want_b ? num_groups : 0));
    rid_t* fw_data = want_f ? fw.data() : nullptr;
    sched->ParallelFor(np, [&](size_t p, size_t) {
      const Morsel span = parts[p];
      std::vector<RidVec>* local_bw = want_b ? &part_bw[p] : nullptr;
      for (rid_t r = span.begin; r < span.end; ++r) {
        uint32_t slot = h->Probe(input, r);
        SMOKE_DCHECK(slot != IntKeyMap::kNotFound);
        if (want_b) (*local_bw)[slot].PushBack(r);
        if (want_f) fw_data[r] = slot;
      }
    });
    if (want_b) {
      for (size_t p = 0; p < np; ++p) {
        for (size_t g = 0; g < num_groups; ++g) {
          const RidVec& src = part_bw[p][g];
          if (!src.empty()) bw.list(g).PushBackAll(src.data(), src.size());
        }
      }
    }
  } else {
    for (rid_t r = 0; r < n; ++r) {
      uint32_t slot = h->Probe(input, r);
      SMOKE_DCHECK(slot != IntKeyMap::kNotFound);
      if (want_b) bw.Append(slot, r);
      if (want_f) fw[r] = slot;
    }
  }

  if (want_b) lin->backward = LineageIndex::FromIndex(std::move(bw));
  if (want_f) lin->forward = LineageIndex::FromArray(std::move(fw));
  result->lineage.set_output_cardinality(num_groups);
}


// ---------------------------------------------------------------------------
// Refresh and forward propagation (refresh/refresh.h). Implemented here for
// access to GroupByInternals.
// ---------------------------------------------------------------------------

namespace {

/// Rewrites the finalized aggregate values of output row `g` in place.
void RewriteOutputRowIn(Table* output, GroupByHandle* h, uint32_t g,
                        size_t num_keys) {
  const AggLayout& layout = h->layout();
  const double* state = GroupByInternals::MutableAggState(h, g);
  for (size_t i = 0; i < layout.num_aggs(); ++i) {
    double v = layout.FinalValue(state, i);
    Column& col = output->mutable_column(num_keys + i);
    if (col.type() == DataType::kInt64) {
      col.mutable_ints()[g] = static_cast<int64_t>(v);
    } else {
      col.mutable_doubles()[g] = v;
    }
  }
}

void RewriteOutputRow(GroupByResult* result, uint32_t g, size_t num_keys) {
  RewriteOutputRowIn(&result->output, result->handle.get(), g, num_keys);
}

/// Appends a fresh output row for a newly created group.
void AppendOutputRowTo(Table* output, GroupByHandle* h, const Table& input,
                       uint32_t g, const std::vector<int>& key_cols) {
  rid_t rep = GroupByInternals::FirstRid(h, g);
  for (size_t k = 0; k < key_cols.size(); ++k) {
    output->mutable_column(k).AppendFrom(
        input.column(static_cast<size_t>(key_cols[k])), rep);
  }
  const AggLayout& layout = h->layout();
  std::vector<Column*> agg_cols;
  for (size_t i = 0; i < layout.num_aggs(); ++i) {
    agg_cols.push_back(&output->mutable_column(key_cols.size() + i));
  }
  layout.Finalize(GroupByInternals::MutableAggState(h, g), &agg_cols);
}

void AppendOutputRow(GroupByResult* result, const Table& input, uint32_t g,
                     const std::vector<int>& key_cols) {
  AppendOutputRowTo(&result->output, result->handle.get(), input, g,
                    key_cols);
}

}  // namespace

GroupByDelta GroupByDeltaAppend(GroupByHandle* h, const Table& input,
                                rid_t first_new_rid, Table* output) {
  SMOKE_CHECK(h != nullptr);
  // Appends may have reallocated the column payloads the compiled
  // aggregate expressions point into.
  GroupByInternals::RebindLayout(h, input);
  GroupByDelta d;
  d.old_num_groups = h->num_groups();
  const size_t n = input.num_rows();
  const std::vector<int>& key_cols = GroupByInternals::KeyCols(h);
  std::vector<uint8_t> seen(h->num_groups(), 0);
  if (n > first_new_rid) d.slots.reserve(n - first_new_rid);
  for (rid_t r = first_new_rid; r < n; ++r) {
    bool created = false;
    uint32_t g = GroupByInternals::FindOrCreate(h, input, r, &created);
    h->layout().Update(GroupByInternals::MutableAggState(h, g), r);
    ++GroupByInternals::counts(h)[g];
    if (created) {
      seen.push_back(0);
      AppendOutputRowTo(output, h, input, g, key_cols);
    }
    d.slots.push_back(g);
    if (!seen[g]) {
      seen[g] = 1;
      d.touched.push_back(g);
    }
  }
  for (uint32_t g : d.touched) {
    RewriteOutputRowIn(output, h, g, key_cols.size());
  }
  return d;
}

std::vector<rid_t> RefreshAppend(GroupByResult* result, const Table& input,
                                 rid_t first_new_rid) {
  GroupByHandle* h = result->handle.get();
  SMOKE_CHECK(h != nullptr);
  SMOKE_CHECK(result->lineage.num_inputs() == 1);
  TableLineage& lin = result->lineage.mutable_input(0);
  SMOKE_CHECK(lin.backward.kind() == LineageIndex::Kind::kIndex);
  SMOKE_CHECK(lin.forward.kind() == LineageIndex::Kind::kArray);
  RidIndex& bw = lin.backward.mutable_index();
  RidArray& fw = lin.forward.mutable_array();
  // Appends may have reallocated the column payloads the compiled
  // aggregate expressions point into.
  GroupByInternals::RebindLayout(h, input);
  const size_t n = input.num_rows();
  const size_t num_keys = result->output.num_columns() -
                          h->layout().num_aggs();
  const std::vector<int>& key_cols = GroupByInternals::KeyCols(h);

  std::vector<rid_t> affected;
  std::vector<uint8_t> seen(h->num_groups(), 0);
  fw.resize(n, kInvalidRid);
  for (rid_t r = first_new_rid; r < n; ++r) {
    bool created = false;
    uint32_t g = GroupByInternals::FindOrCreate(h, input, r, &created);
    h->layout().Update(GroupByInternals::MutableAggState(h, g), r);
    ++GroupByInternals::counts(h)[g];
    if (created) {
      bw.Resize(h->num_groups());
      seen.push_back(0);
      AppendOutputRow(result, input, g, key_cols);
    }
    bw.Append(g, r);
    fw[r] = g;
    if (!seen[g]) {
      seen[g] = 1;
      affected.push_back(g);
    }
  }
  for (rid_t g : affected) RewriteOutputRow(result, g, num_keys);
  result->lineage.set_output_cardinality(h->num_groups());
  return affected;
}

std::vector<rid_t> ForwardPropagate(GroupByResult* result, const Table& input,
                                    const std::vector<rid_t>& updated_rids) {
  GroupByHandle* h = result->handle.get();
  SMOKE_CHECK(h != nullptr);
  TableLineage& lin = result->lineage.mutable_input(0);
  SMOKE_CHECK(lin.forward.kind() == LineageIndex::Kind::kArray);
  SMOKE_CHECK(lin.backward.kind() == LineageIndex::Kind::kIndex);
  const RidArray& fw = lin.forward.array();
  const RidIndex& bw = lin.backward.index();
  GroupByInternals::RebindLayout(h, input);
  const size_t num_keys = result->output.num_columns() -
                          h->layout().num_aggs();

  // Forward-trace the updated rows to the affected groups.
  std::vector<uint8_t> seen(h->num_groups(), 0);
  std::vector<rid_t> affected;
  for (rid_t r : updated_rids) {
    rid_t g = fw[r];
    if (g == kInvalidRid || seen[g]) continue;
    seen[g] = 1;
    affected.push_back(g);
  }

  // Recompute each affected group from its backward lineage (secondary
  // index scan — the affected subset, not the whole relation).
  for (rid_t g : affected) {
    GroupByInternals::ReinitAggState(h, g);
    double* state = GroupByInternals::MutableAggState(h, g);
    for (rid_t r : bw.list(g)) h->layout().Update(state, r);
    RewriteOutputRow(result, g, num_keys);
  }
  return affected;
}

}  // namespace smoke
