// Instrumented set and bag operators (paper Appendix F).
//
// All are hash-based. Lineage shapes:
//   set union / set intersection: backward is 1-to-N (rid index) per input,
//     forward is 1-to-1 (rid array) per input;
//   bag union: pure concatenation — lineage is offset arithmetic, captured
//     as cheap rid arrays;
//   bag intersection: backward is 1-to-1 (each output pairs one A and one B
//     duplicate), forward is 1-to-N;
//   set difference: lineage is captured for the outer relation A only — an
//     output additionally depends on the *whole* inner relation B, which
//     Smoke does not materialize (Appendix F.5).
//
// Inject populates indexes during the build/probe/scan phases; Defer stores
// only an oid per hash entry and constructs exactly-sized indexes afterwards
// by re-probing the reused hash table (operators ⋈'∪ / ⋈'∩ in the paper).
//
// In composable plans these kernels back the kSetOp node (plan/operator.h).
#ifndef SMOKE_ENGINE_SET_OPS_H_
#define SMOKE_ENGINE_SET_OPS_H_

#include <string>
#include <vector>

#include "engine/capture.h"
#include "lineage/query_lineage.h"
#include "storage/table.h"

namespace smoke {

struct SetOpResult {
  Table output;
  QueryLineage lineage;  ///< input 0 = A; input 1 = B (absent for set diff)
};

/// A ∪_set B over columns `cols` (same positions in both tables; output
/// schema is A's projection onto `cols`). Supports kNone/kInject/kDefer.
SetOpResult SetUnionExec(const Table& a, const std::string& a_name,
                         const Table& b, const std::string& b_name,
                         const std::vector<int>& cols,
                         const CaptureOptions& opts);

/// A ∪_bag B (concatenation; schemas must match). Lineage is captured as
/// rid arrays derived from the boundary offset.
SetOpResult BagUnionExec(const Table& a, const std::string& a_name,
                         const Table& b, const std::string& b_name,
                         const CaptureOptions& opts);

/// A ∩_set B over `cols`. Supports kNone/kInject/kDefer.
SetOpResult SetIntersectExec(const Table& a, const std::string& a_name,
                             const Table& b, const std::string& b_name,
                             const std::vector<int>& cols,
                             const CaptureOptions& opts);

/// A ∩_bag B over `cols`: each distinct value emits (#A dups × #B dups)
/// output rows. Supports kNone/kInject/kDefer.
SetOpResult BagIntersectExec(const Table& a, const std::string& a_name,
                             const Table& b, const std::string& b_name,
                             const std::vector<int>& cols,
                             const CaptureOptions& opts);

/// A ∖_set B over `cols`. Captures lineage for A only. kNone/kInject.
SetOpResult SetDifferenceExec(const Table& a, const std::string& a_name,
                              const Table& b, const std::string& b_name,
                              const std::vector<int>& cols,
                              const CaptureOptions& opts);

}  // namespace smoke

#endif  // SMOKE_ENGINE_SET_OPS_H_
