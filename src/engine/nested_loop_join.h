// Nested-loop θ-join and cross product (paper Appendix F.6–F.7).
#ifndef SMOKE_ENGINE_NESTED_LOOP_JOIN_H_
#define SMOKE_ENGINE_NESTED_LOOP_JOIN_H_

#include <string>
#include <vector>

#include "engine/capture.h"
#include "engine/expr.h"
#include "lineage/query_lineage.h"
#include "storage/table.h"

namespace smoke {

/// One conjunct of a θ condition: left.col <op> right.col.
struct ThetaCond {
  int left_col = -1;
  CmpOp op = CmpOp::kEq;
  int right_col = -1;
};

struct NljSpec {
  std::vector<ThetaCond> conds;  ///< conjunction; empty = cross product
  bool materialize_output = true;

  /// Appendix F.6 optimization: outputs for one A row are contiguous, so
  /// A's forward index can store only the first output rid of each run
  /// (exposed for the ablation bench; lineage queries expand the run).
  bool condense_left_forward = false;
};

struct NljResult {
  Table output;
  QueryLineage lineage;  ///< input 0 = A (outer), input 1 = B (inner)
  size_t output_cardinality = 0;
  /// With condense_left_forward: per A rid, run start and length.
  RidArray left_run_start;
  std::vector<uint32_t> left_run_len;
};

/// Executes A ⋈θ B by nested loops with Inject capture (kNone/kInject).
NljResult NestedLoopJoinExec(const Table& left, const std::string& left_name,
                             const Table& right,
                             const std::string& right_name,
                             const NljSpec& spec, const CaptureOptions& opts);

/// \brief Cross-product lineage is computed, not captured (Appendix F.7):
/// output rid o pairs A rid o / |B| with B rid o % |B|.
struct CrossLineage {
  size_t num_left = 0;
  size_t num_right = 0;

  rid_t BackwardLeft(size_t out) const {
    return static_cast<rid_t>(out / num_right);
  }
  rid_t BackwardRight(size_t out) const {
    return static_cast<rid_t>(out % num_right);
  }
  /// Appends the output rids derived from A rid `a` ({a*|B| .. a*|B|+|B|-1}).
  void ForwardLeftInto(rid_t a, std::vector<rid_t>* out) const {
    for (size_t j = 0; j < num_right; ++j) {
      out->push_back(static_cast<rid_t>(a * num_right + j));
    }
  }
  /// Appends the output rids derived from B rid `b` ({b, b+|B|, ...}).
  void ForwardRightInto(rid_t b, std::vector<rid_t>* out) const {
    for (size_t i = 0; i < num_left; ++i) {
      out->push_back(static_cast<rid_t>(i * num_right + b));
    }
  }
};

struct CrossResult {
  Table output;
  CrossLineage lineage;
};

/// Materializes A × B (or only computes the lineage arithmetic when
/// `materialize_output` is false).
CrossResult CrossProductExec(const Table& left, const Table& right,
                             bool materialize_output);

}  // namespace smoke

#endif  // SMOKE_ENGINE_NESTED_LOOP_JOIN_H_
