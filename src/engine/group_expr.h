// Derived integer grouping keys (paper Section 6.4: the drill-down queries
// group by EXTRACT(YEAR/MONTH FROM date) over yyyymmdd-encoded dates, or by
// small decimal columns scaled to integers, e.g. l_tax ×100).
//
// GroupExpr is the shared vocabulary between the legacy consuming-query
// mini-language (query/consuming.h) and the plan-level Derive operator
// (plan/plan.h) that the unified lineage-consumption API compiles consuming
// queries onto — both paths evaluate keys through BoundGroupExpr, so their
// results are bit-identical.
#ifndef SMOKE_ENGINE_GROUP_EXPR_H_
#define SMOKE_ENGINE_GROUP_EXPR_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "storage/table.h"

namespace smoke {

/// A derived integer grouping key over one column of a relation. The
/// source column is an index, or a name (`col_name`) resolved against the
/// input schema by PlanBuilder::Build and cleared once resolved.
struct GroupExpr {
  enum class Kind : uint8_t { kRaw, kYear, kMonth, kScale100 };
  Kind kind = Kind::kRaw;
  int col = -1;
  std::string name;
  std::string col_name;

  static GroupExpr Raw(int col, std::string name) {
    return GroupExpr{Kind::kRaw, col, std::move(name), {}};
  }
  static GroupExpr Year(int col, std::string name = "year") {
    return GroupExpr{Kind::kYear, col, std::move(name), {}};
  }
  static GroupExpr Month(int col, std::string name = "month") {
    return GroupExpr{Kind::kMonth, col, std::move(name), {}};
  }
  static GroupExpr Scale100(int col, std::string name) {
    return GroupExpr{Kind::kScale100, col, std::move(name), {}};
  }

  // Name-based forms, resolved at plan-build time.
  static GroupExpr Raw(std::string col, std::string name) {
    return GroupExpr{Kind::kRaw, -1, std::move(name), std::move(col)};
  }
  static GroupExpr Year(std::string col, std::string name = "year") {
    return GroupExpr{Kind::kYear, -1, std::move(name), std::move(col)};
  }
  static GroupExpr Month(std::string col, std::string name = "month") {
    return GroupExpr{Kind::kMonth, -1, std::move(name), std::move(col)};
  }
  static GroupExpr Scale100(std::string col, std::string name) {
    return GroupExpr{Kind::kScale100, -1, std::move(name), std::move(col)};
  }
};

/// \brief A GroupExpr bound to a table's column payload. kRaw/kYear/kMonth
/// read int64 columns; kScale100 reads a float64 column.
struct BoundGroupExpr {
  GroupExpr::Kind kind = GroupExpr::Kind::kRaw;
  const int64_t* icol = nullptr;
  const double* dcol = nullptr;

  /// Binds `g` against `table`; returns false when the column index is out
  /// of range or its type does not match the expression kind.
  static bool Bind(const Table& table, const GroupExpr& g,
                   BoundGroupExpr* out) {
    int col = g.col;
    if (!g.col_name.empty()) col = table.ColumnIndex(g.col_name);
    if (col < 0 || static_cast<size_t>(col) >= table.num_columns()) {
      return false;
    }
    const Column& c = table.column(static_cast<size_t>(col));
    out->kind = g.kind;
    out->icol = nullptr;
    out->dcol = nullptr;
    if (g.kind == GroupExpr::Kind::kScale100) {
      if (c.type() != DataType::kFloat64) return false;
      out->dcol = c.doubles().data();
    } else {
      // String keys must be dictionary-encoded to int codes first.
      if (c.type() != DataType::kInt64) return false;
      out->icol = c.ints().data();
    }
    return true;
  }

  int64_t Eval(rid_t r) const {
    switch (kind) {
      case GroupExpr::Kind::kRaw:
        return icol[r];
      case GroupExpr::Kind::kYear:
        return icol[r] / 10000;  // yyyymmdd
      case GroupExpr::Kind::kMonth:
        return (icol[r] / 100) % 100;
      case GroupExpr::Kind::kScale100:
        return static_cast<int64_t>(std::llround(dcol[r] * 100.0));
    }
    return 0;
  }
};

}  // namespace smoke

#endif  // SMOKE_ENGINE_GROUP_EXPR_H_
