// Multi-operator SPJA block executor with end-to-end lineage capture
// (paper Section 3.3) and workload-aware optimizations (Section 4).
//
// The executor handles Select-Project-Join-Aggregate blocks over a fact
// table joined to a snowflake chain of dimension tables by pk-fk joins —
// the plan shape of TPC-H Q1/Q3/Q10/Q12 and of the paper's SPJA focus.
// Selections and projections are pipelined; the dimension hash tables are
// the pipeline breakers and are augmented with lineage (the pk-side rid is
// the hash-table payload); the final aggregation is where Inject and Defer
// differ, exactly as in the paper ("the joins are instrumented identically,
// while select and project are pipelined").
//
// Lineage propagation emits a *single* set of end-to-end indexes connecting
// the query output to every base relation: per output group, one backward
// rid list per table, aligned position-by-position (position j of every
// list is the same join witness — this alignment is what Appendix E uses to
// recover why-/how-provenance). Forward: the fact side is a 1:1 rid array;
// dimension sides are rid indexes (consecutive duplicates collapsed).
#ifndef SMOKE_ENGINE_SPJA_H_
#define SMOKE_ENGINE_SPJA_H_

#include <memory>
#include <string>
#include <vector>

#include "capture/cube_index.h"
#include "engine/aggregates.h"
#include "engine/capture.h"
#include "engine/expr.h"
#include "lineage/partitioned_rid_index.h"
#include "lineage/query_lineage.h"
#include "storage/dictionary.h"
#include "storage/table.h"

namespace smoke {

/// Reference to a column of the fact table (table == kFact) or of a
/// dimension (table == dim index).
struct ColRef {
  static constexpr int kFact = -1;
  int table = kFact;
  int col = -1;

  static ColRef Fact(int col) { return ColRef{kFact, col}; }
  static ColRef Dim(int dim, int col) { return ColRef{dim, col}; }
};

/// One pk-fk dimension join. The fk value comes from the fact table or from
/// a previously joined dimension (snowflake chains, e.g. lineitem→orders→
/// customer→nation in Q10).
struct SPJADim {
  const Table* table = nullptr;
  std::string name;
  int pk_col = -1;
  ColRef fk;
  std::vector<Predicate> filters;
};

/// An SPJA query block.
///
/// AggSpec::src indexes the table list [fact, dim0, dim1, ...] — i.e.
/// src 0 reads fact columns, src 1 + i reads dimension i (TPC-H Q12's CASE
/// aggregates read o_orderpriority from the orders dimension).
struct SPJAQuery {
  const Table* fact = nullptr;
  std::string fact_name;
  std::vector<Predicate> fact_filters;
  std::vector<SPJADim> dims;
  std::vector<ColRef> group_by;
  std::vector<AggSpec> aggs;
};

/// Workload-aware push-down configuration (Section 4.2). All push-downs
/// apply to the fact table and require CaptureMode::kInject.
struct SPJAPushdown {
  /// Selection push-down: static predicates checked before appending a fact
  /// rid to backward lineage (rows failing them still contribute to the
  /// query result, just not to the captured lineage).
  std::vector<Predicate> sel_fact;

  /// Data skipping: partition the fact backward rid lists by these columns
  /// (replaces the plain fact backward index with a PartitionedRidIndex).
  std::vector<int> skip_cols;

  /// Group-by push-down: per output group, materialize these aggregates
  /// keyed by these extra fact grouping columns (online partial cube).
  std::vector<int> cube_cols;
  std::vector<AggSpec> cube_aggs;

  bool empty() const {
    return sel_fact.empty() && skip_cols.empty() && cube_cols.empty();
  }
};

struct SPJAResult {
  Table output;             ///< group-by keys then aggregates
  QueryLineage lineage;     ///< inputs: fact, then dims in order
  Table annotated;          ///< Logic modes: denormalized annotated relation
  size_t output_cardinality = 0;
  std::vector<uint32_t> group_counts;  ///< passing fact rows per group

  // Push-down artifacts.
  PartitionedRidIndex skip_index;  ///< fact backward, partitioned
  Dictionary skip_dict;            ///< partition codes of fact rows
  CubeIndex cube;                  ///< materialized sub-aggregates
  /// The push-down configuration the artifacts were built with (empty when
  /// none) — the unified consumption API resolves its physical strategy
  /// choice (skipping / cube) against this at plan-compile time.
  SPJAPushdown applied_pushdown;
};

/// Executes the SPJA block with the capture technique in `opts` and optional
/// push-downs. Supported modes: kNone, kInject, kDefer, kLogicRid,
/// kLogicTup, kLogicIdx (the physical baselines are evaluated on single
/// operators, as in the paper).
///
/// This entry point is a thin compatibility wrapper: it builds the canonical
/// single-block plan with PlanBuilder (plan/plan.h) and runs it through the
/// plan executor. Arbitrary plan shapes — rollups, joins of aggregated
/// subplans, select-over-aggregate — compose the same block and the other
/// operators freely through that API.
SPJAResult SPJAExec(const SPJAQuery& q, const CaptureOptions& opts,
                    const SPJAPushdown* push = nullptr);

namespace internal {

/// The fused SPJA block kernel (the instrumented multi-operator pipeline
/// described in the header comment). Invoked by the plan layer's SpjaBlock
/// operator; callers should go through SPJAExec or PlanBuilder.
SPJAResult SPJAExecFused(const SPJAQuery& q, const CaptureOptions& opts,
                         const SPJAPushdown* push = nullptr);

}  // namespace internal

}  // namespace smoke

#endif  // SMOKE_ENGINE_SPJA_H_
