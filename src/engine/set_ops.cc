#include "engine/set_ops.h"

#include <unordered_map>

#include "common/macros.h"
#include "engine/key_encode.h"

namespace smoke {

namespace {

Schema ProjectedSchema(const Table& a, const std::vector<int>& cols) {
  Schema s;
  for (int c : cols) {
    s.AddField(a.schema().field(static_cast<size_t>(c)).name,
               a.schema().field(static_cast<size_t>(c)).type);
  }
  return s;
}

void AppendProjected(const Table& src, rid_t rid,
                     const std::vector<int>& cols, Table* out) {
  for (size_t i = 0; i < cols.size(); ++i) {
    out->mutable_column(i).AppendFrom(
        src.column(static_cast<size_t>(cols[i])), rid);
  }
}

}  // namespace

SetOpResult SetUnionExec(const Table& a, const std::string& a_name,
                         const Table& b, const std::string& b_name,
                         const std::vector<int>& cols,
                         const CaptureOptions& opts) {
  const size_t na = a.num_rows();
  const size_t nb = b.num_rows();
  const bool inject = opts.mode == CaptureMode::kInject;
  const bool defer = opts.mode == CaptureMode::kDefer;

  std::unordered_map<std::string, uint32_t> ht;
  ht.reserve(na);
  std::vector<RidVec> a_rids, b_rids;   // Inject
  std::vector<rid_t> repr;              // representative rid (A- or B-space)
  std::vector<uint8_t> repr_from_a;

  // ∪ht: build phase over A.
  for (rid_t r = 0; r < na; ++r) {
    auto [it, inserted] =
        ht.emplace(EncodeRowKey(a, cols, r), static_cast<uint32_t>(repr.size()));
    if (inserted) {
      repr.push_back(r);
      repr_from_a.push_back(1);
      if (inject) {
        a_rids.emplace_back();
        b_rids.emplace_back();
      }
    }
    if (inject) a_rids[it->second].PushBack(r);
  }
  // ∪p: probe/append phase over B.
  for (rid_t r = 0; r < nb; ++r) {
    auto [it, inserted] =
        ht.emplace(EncodeRowKey(b, cols, r), static_cast<uint32_t>(repr.size()));
    if (inserted) {
      repr.push_back(r);
      repr_from_a.push_back(0);
      if (inject) {
        a_rids.emplace_back();
        b_rids.emplace_back();
      }
    }
    if (inject) b_rids[it->second].PushBack(r);
  }

  // ∪scan: emit one output row per entry; slot == output rid.
  SetOpResult result;
  result.output = Table(ProjectedSchema(a, cols));
  const size_t num_out = repr.size();
  result.output.Reserve(num_out);
  for (size_t s = 0; s < num_out; ++s) {
    if (repr_from_a[s]) AppendProjected(a, repr[s], cols, &result.output);
    else AppendProjected(b, repr[s], cols, &result.output);
  }

  if (opts.mode == CaptureMode::kNone) return result;
  TableLineage& la = result.lineage.AddInput(a_name, &a);
  TableLineage& lb = result.lineage.AddInput(b_name, &b);
  result.lineage.set_output_cardinality(num_out);

  RidIndex a_bw, b_bw;
  RidArray a_fw(na, kInvalidRid), b_fw(nb, kInvalidRid);
  if (inject) {
    a_bw = RidIndex::FromLists(std::move(a_rids));
    b_bw = RidIndex::FromLists(std::move(b_rids));
    for (size_t s = 0; s < num_out; ++s) {
      for (rid_t r : a_bw.list(s)) a_fw[r] = static_cast<rid_t>(s);
      for (rid_t r : b_bw.list(s)) b_fw[r] = static_cast<rid_t>(s);
    }
  } else if (defer) {
    // ⋈'∪: re-probe the reused hash table for each input relation.
    a_bw.Resize(num_out);
    b_bw.Resize(num_out);
    for (rid_t r = 0; r < na; ++r) {
      uint32_t s = ht.find(EncodeRowKey(a, cols, r))->second;
      a_bw.Append(s, r);
      a_fw[r] = s;
    }
    for (rid_t r = 0; r < nb; ++r) {
      uint32_t s = ht.find(EncodeRowKey(b, cols, r))->second;
      b_bw.Append(s, r);
      b_fw[r] = s;
    }
  }
  if (opts.capture_backward) {
    la.backward = LineageIndex::FromIndex(std::move(a_bw));
    lb.backward = LineageIndex::FromIndex(std::move(b_bw));
  }
  if (opts.capture_forward) {
    la.forward = LineageIndex::FromArray(std::move(a_fw));
    lb.forward = LineageIndex::FromArray(std::move(b_fw));
  }
  return result;
}

SetOpResult BagUnionExec(const Table& a, const std::string& a_name,
                         const Table& b, const std::string& b_name,
                         const CaptureOptions& opts) {
  SMOKE_CHECK(a.num_columns() == b.num_columns());
  const size_t na = a.num_rows();
  const size_t nb = b.num_rows();

  SetOpResult result;
  result.output = Table(a.schema());
  result.output.Reserve(na + nb);
  for (rid_t r = 0; r < na; ++r) result.output.AppendRowFrom(a, r);
  for (rid_t r = 0; r < nb; ++r) result.output.AppendRowFrom(b, r);

  if (opts.mode == CaptureMode::kNone) return result;
  // Lineage is pure offset arithmetic around the boundary rid |A|.
  TableLineage& la = result.lineage.AddInput(a_name, &a);
  TableLineage& lb = result.lineage.AddInput(b_name, &b);
  result.lineage.set_output_cardinality(na + nb);
  RidIndex a_bw(na + nb), b_bw(na + nb);
  RidArray a_fw(na), b_fw(nb);
  for (rid_t r = 0; r < na; ++r) {
    a_bw.Append(r, r);
    a_fw[r] = r;
  }
  for (rid_t r = 0; r < nb; ++r) {
    b_bw.Append(na + r, r);
    b_fw[r] = static_cast<rid_t>(na + r);
  }
  if (opts.capture_backward) {
    la.backward = LineageIndex::FromIndex(std::move(a_bw));
    lb.backward = LineageIndex::FromIndex(std::move(b_bw));
  }
  if (opts.capture_forward) {
    la.forward = LineageIndex::FromArray(std::move(a_fw));
    lb.forward = LineageIndex::FromArray(std::move(b_fw));
  }
  return result;
}

SetOpResult SetIntersectExec(const Table& a, const std::string& a_name,
                             const Table& b, const std::string& b_name,
                             const std::vector<int>& cols,
                             const CaptureOptions& opts) {
  const size_t na = a.num_rows();
  const size_t nb = b.num_rows();
  const bool inject = opts.mode == CaptureMode::kInject;
  const bool defer = opts.mode == CaptureMode::kDefer;

  std::unordered_map<std::string, uint32_t> ht;
  ht.reserve(na);
  std::vector<RidVec> a_rids, b_rids;
  std::vector<rid_t> repr;
  std::vector<uint8_t> matched;  // the paper's b_bit

  // ∩ht: build over A.
  for (rid_t r = 0; r < na; ++r) {
    auto [it, inserted] =
        ht.emplace(EncodeRowKey(a, cols, r), static_cast<uint32_t>(repr.size()));
    if (inserted) {
      repr.push_back(r);
      matched.push_back(0);
      if (inject) {
        a_rids.emplace_back();
        b_rids.emplace_back();
      }
    }
    if (inject) a_rids[it->second].PushBack(r);
  }
  // ∩p: probe with B.
  for (rid_t r = 0; r < nb; ++r) {
    auto it = ht.find(EncodeRowKey(b, cols, r));
    if (it == ht.end()) continue;
    matched[it->second] = 1;
    if (inject) b_rids[it->second].PushBack(r);
  }

  // ∩scan: emit matched entries.
  SetOpResult result;
  result.output = Table(ProjectedSchema(a, cols));
  std::vector<rid_t> entry_oid(repr.size(), kInvalidRid);
  rid_t oid = 0;
  for (size_t s = 0; s < repr.size(); ++s) {
    if (!matched[s]) continue;
    AppendProjected(a, repr[s], cols, &result.output);
    entry_oid[s] = oid++;
  }

  if (opts.mode == CaptureMode::kNone) return result;
  TableLineage& la = result.lineage.AddInput(a_name, &a);
  TableLineage& lb = result.lineage.AddInput(b_name, &b);
  result.lineage.set_output_cardinality(oid);

  RidIndex a_bw(oid), b_bw(oid);
  RidArray a_fw(na, kInvalidRid), b_fw(nb, kInvalidRid);
  if (inject) {
    // Unmatched entries' a_rids are discarded (the cost Defer avoids).
    for (size_t s = 0; s < repr.size(); ++s) {
      if (entry_oid[s] == kInvalidRid) continue;
      a_bw.list(entry_oid[s]) = std::move(a_rids[s]);
      b_bw.list(entry_oid[s]) = std::move(b_rids[s]);
    }
    for (size_t s = 0; s < repr.size(); ++s) {
      if (entry_oid[s] == kInvalidRid) continue;
      for (rid_t r : a_bw.list(entry_oid[s])) a_fw[r] = entry_oid[s];
      for (rid_t r : b_bw.list(entry_oid[s])) b_fw[r] = entry_oid[s];
    }
  } else if (defer) {
    // ⋈'∩: re-probe for each relation.
    for (rid_t r = 0; r < na; ++r) {
      uint32_t s = ht.find(EncodeRowKey(a, cols, r))->second;
      if (entry_oid[s] == kInvalidRid) continue;
      a_bw.Append(entry_oid[s], r);
      a_fw[r] = entry_oid[s];
    }
    for (rid_t r = 0; r < nb; ++r) {
      auto it = ht.find(EncodeRowKey(b, cols, r));
      if (it == ht.end() || entry_oid[it->second] == kInvalidRid) continue;
      b_bw.Append(entry_oid[it->second], r);
      b_fw[r] = entry_oid[it->second];
    }
  }
  if (opts.capture_backward) {
    la.backward = LineageIndex::FromIndex(std::move(a_bw));
    lb.backward = LineageIndex::FromIndex(std::move(b_bw));
  }
  if (opts.capture_forward) {
    la.forward = LineageIndex::FromArray(std::move(a_fw));
    lb.forward = LineageIndex::FromArray(std::move(b_fw));
  }
  return result;
}

SetOpResult BagIntersectExec(const Table& a, const std::string& a_name,
                             const Table& b, const std::string& b_name,
                             const std::vector<int>& cols,
                             const CaptureOptions& opts) {
  const size_t na = a.num_rows();
  const size_t nb = b.num_rows();
  const bool inject = opts.mode == CaptureMode::kInject;
  const bool defer = opts.mode == CaptureMode::kDefer;

  std::unordered_map<std::string, uint32_t> ht;
  ht.reserve(na);
  // Inject keeps the duplicate rids themselves; plain/Defer keep counts.
  std::vector<RidVec> a_rids, b_rids;
  std::vector<uint32_t> a_matches, b_matches;
  std::vector<rid_t> repr;

  for (rid_t r = 0; r < na; ++r) {
    auto [it, inserted] =
        ht.emplace(EncodeRowKey(a, cols, r), static_cast<uint32_t>(repr.size()));
    if (inserted) {
      repr.push_back(r);
      a_matches.push_back(0);
      b_matches.push_back(0);
      if (inject) {
        a_rids.emplace_back();
        b_rids.emplace_back();
      }
    }
    ++a_matches[it->second];
    if (inject) a_rids[it->second].PushBack(r);
  }
  for (rid_t r = 0; r < nb; ++r) {
    auto it = ht.find(EncodeRowKey(b, cols, r));
    if (it == ht.end()) continue;
    ++b_matches[it->second];
    if (inject) b_rids[it->second].PushBack(r);
  }

  // Scan: entry s emits a_matches[s] * b_matches[s] rows (i outer, j inner).
  SetOpResult result;
  result.output = Table(ProjectedSchema(a, cols));
  std::vector<rid_t> first_oid(repr.size(), kInvalidRid);
  rid_t oid = 0;
  for (size_t s = 0; s < repr.size(); ++s) {
    if (b_matches[s] == 0) continue;
    first_oid[s] = oid;
    const uint32_t rows = a_matches[s] * b_matches[s];
    for (uint32_t k = 0; k < rows; ++k) {
      AppendProjected(a, repr[s], cols, &result.output);
    }
    oid += rows;
  }

  if (opts.mode == CaptureMode::kNone) return result;
  TableLineage& la = result.lineage.AddInput(a_name, &a);
  TableLineage& lb = result.lineage.AddInput(b_name, &b);
  result.lineage.set_output_cardinality(oid);

  // Bag intersection backward lineage is 1-to-1 (rid arrays).
  RidArray a_bw(oid, kInvalidRid), b_bw(oid, kInvalidRid);
  RidIndex a_fw(na), b_fw(nb);

  if (inject) {
    for (size_t s = 0; s < repr.size(); ++s) {
      if (first_oid[s] == kInvalidRid) continue;
      const RidVec& ar = a_rids[s];
      const RidVec& br = b_rids[s];
      for (size_t i = 0; i < ar.size(); ++i) {
        for (size_t j = 0; j < br.size(); ++j) {
          rid_t out = first_oid[s] +
                      static_cast<rid_t>(i * br.size() + j);
          a_bw[out] = ar[i];
          b_bw[out] = br[j];
          a_fw.Append(ar[i], out);
          b_fw.Append(br[j], out);
        }
      }
    }
  } else if (defer) {
    // Re-scan each relation with a per-entry duplicate counter; output rids
    // follow from first_oid and the (i, j) run structure.
    std::vector<uint32_t> seen(repr.size(), 0);
    for (rid_t r = 0; r < na; ++r) {
      uint32_t s = ht.find(EncodeRowKey(a, cols, r))->second;
      if (first_oid[s] == kInvalidRid) {
        continue;
      }
      uint32_t i = seen[s]++;
      a_fw.list(r).Reserve(b_matches[s]);
      for (uint32_t j = 0; j < b_matches[s]; ++j) {
        rid_t out = first_oid[s] + i * b_matches[s] + j;
        a_bw[out] = r;
        a_fw.Append(r, out);
      }
    }
    std::fill(seen.begin(), seen.end(), 0);
    for (rid_t r = 0; r < nb; ++r) {
      auto it = ht.find(EncodeRowKey(b, cols, r));
      if (it == ht.end() || first_oid[it->second] == kInvalidRid) continue;
      uint32_t s = it->second;
      uint32_t j = seen[s]++;
      b_fw.list(r).Reserve(a_matches[s]);
      for (uint32_t i = 0; i < a_matches[s]; ++i) {
        rid_t out = first_oid[s] + i * b_matches[s] + j;
        b_bw[out] = r;
        b_fw.Append(r, out);
      }
    }
  }
  if (opts.capture_backward) {
    la.backward = LineageIndex::FromArray(std::move(a_bw));
    lb.backward = LineageIndex::FromArray(std::move(b_bw));
  }
  if (opts.capture_forward) {
    la.forward = LineageIndex::FromIndex(std::move(a_fw));
    lb.forward = LineageIndex::FromIndex(std::move(b_fw));
  }
  return result;
}

SetOpResult SetDifferenceExec(const Table& a, const std::string& a_name,
                              const Table& b, const std::string& b_name,
                              const std::vector<int>& cols,
                              const CaptureOptions& opts) {
  (void)b_name;
  const size_t na = a.num_rows();
  const size_t nb = b.num_rows();
  const bool inject = opts.mode == CaptureMode::kInject ||
                      opts.mode == CaptureMode::kDefer;

  std::unordered_map<std::string, uint32_t> ht;
  ht.reserve(na);
  std::vector<RidVec> a_rids;
  std::vector<rid_t> repr;
  std::vector<uint8_t> survives;  // the paper's b_bit, initialized to 1

  for (rid_t r = 0; r < na; ++r) {
    auto [it, inserted] =
        ht.emplace(EncodeRowKey(a, cols, r), static_cast<uint32_t>(repr.size()));
    if (inserted) {
      repr.push_back(r);
      survives.push_back(1);
      if (inject) a_rids.emplace_back();
    }
    if (inject) a_rids[it->second].PushBack(r);
  }
  for (rid_t r = 0; r < nb; ++r) {
    auto it = ht.find(EncodeRowKey(b, cols, r));
    if (it != ht.end()) survives[it->second] = 0;
  }

  SetOpResult result;
  result.output = Table(ProjectedSchema(a, cols));
  std::vector<rid_t> entry_oid(repr.size(), kInvalidRid);
  rid_t oid = 0;
  for (size_t s = 0; s < repr.size(); ++s) {
    if (!survives[s]) continue;
    AppendProjected(a, repr[s], cols, &result.output);
    entry_oid[s] = oid++;
  }

  if (opts.mode == CaptureMode::kNone) return result;
  // Lineage only for A (each output also depends on all of B, which is not
  // materialized — backward queries against B fall back to scanning B).
  TableLineage& la = result.lineage.AddInput(a_name, &a);
  result.lineage.set_output_cardinality(oid);
  RidIndex a_bw(oid);
  RidArray a_fw(na, kInvalidRid);
  for (size_t s = 0; s < repr.size(); ++s) {
    if (entry_oid[s] == kInvalidRid) continue;
    a_bw.list(entry_oid[s]) = std::move(a_rids[s]);
    for (rid_t r : a_bw.list(entry_oid[s])) a_fw[r] = entry_oid[s];
  }
  if (opts.capture_backward)
    la.backward = LineageIndex::FromIndex(std::move(a_bw));
  if (opts.capture_forward)
    la.forward = LineageIndex::FromArray(std::move(a_fw));
  return result;
}

}  // namespace smoke
