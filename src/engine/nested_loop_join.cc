#include "engine/nested_loop_join.h"

#include "common/macros.h"

namespace smoke {

namespace {

Schema ConcatSchema(const Table& left, const Table& right,
                    const std::string& right_name) {
  Schema s = left.schema();
  for (const auto& f : right.schema().fields()) {
    std::string name = f.name;
    if (s.IndexOf(name) >= 0) name = right_name + "_" + name;
    s.AddField(std::move(name), f.type);
  }
  return s;
}

/// Evaluates one θ conjunct on (a, b). Numeric columns compare as double;
/// strings compare lexicographically.
bool EvalCond(const Table& left, rid_t a, const Table& right, rid_t b,
              const ThetaCond& c) {
  const Column& lc = left.column(static_cast<size_t>(c.left_col));
  const Column& rc = right.column(static_cast<size_t>(c.right_col));
  if (lc.type() == DataType::kString || rc.type() == DataType::kString) {
    SMOKE_CHECK(lc.type() == DataType::kString &&
                rc.type() == DataType::kString);
    const std::string& lv = lc.strings()[a];
    const std::string& rv = rc.strings()[b];
    switch (c.op) {
      case CmpOp::kLt: return lv < rv;
      case CmpOp::kLe: return lv <= rv;
      case CmpOp::kGt: return lv > rv;
      case CmpOp::kGe: return lv >= rv;
      case CmpOp::kEq: return lv == rv;
      case CmpOp::kNe: return lv != rv;
      case CmpOp::kIn: return false;
    }
    return false;
  }
  double lv = lc.type() == DataType::kInt64
                  ? static_cast<double>(lc.ints()[a])
                  : lc.doubles()[a];
  double rv = rc.type() == DataType::kInt64
                  ? static_cast<double>(rc.ints()[b])
                  : rc.doubles()[b];
  switch (c.op) {
    case CmpOp::kLt: return lv < rv;
    case CmpOp::kLe: return lv <= rv;
    case CmpOp::kGt: return lv > rv;
    case CmpOp::kGe: return lv >= rv;
    case CmpOp::kEq: return lv == rv;
    case CmpOp::kNe: return lv != rv;
    case CmpOp::kIn: return false;
  }
  return false;
}

}  // namespace

NljResult NestedLoopJoinExec(const Table& left, const std::string& left_name,
                             const Table& right,
                             const std::string& right_name,
                             const NljSpec& spec, const CaptureOptions& opts) {
  const size_t na = left.num_rows();
  const size_t nb = right.num_rows();
  const bool inject = opts.mode == CaptureMode::kInject;

  NljResult result;
  result.output = Table(ConcatSchema(left, right, right_name));
  const size_t left_cols = left.num_columns();

  RidArray a_bw, b_bw;
  RidIndex a_fw, b_fw;
  if (inject) {
    if (!spec.condense_left_forward) a_fw.Resize(na);
    b_fw.Resize(nb);
    if (spec.condense_left_forward) {
      result.left_run_start.assign(na, kInvalidRid);
      result.left_run_len.assign(na, 0);
    }
  }

  rid_t oid = 0;
  for (rid_t a = 0; a < na; ++a) {
    const rid_t run_start = oid;
    for (rid_t b = 0; b < nb; ++b) {
      bool match = true;
      for (const ThetaCond& c : spec.conds) {
        if (!EvalCond(left, a, right, b, c)) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      if (spec.materialize_output) {
        result.output.AppendRowFrom(left, a);
        for (size_t c = 0; c < right.num_columns(); ++c) {
          result.output.mutable_column(left_cols + c)
              .AppendFrom(right.column(c), b);
        }
      }
      if (inject) {
        a_bw.push_back(a);
        b_bw.push_back(b);
        if (!spec.condense_left_forward) a_fw.Append(a, oid);
        b_fw.Append(b, oid);
      }
      ++oid;
    }
    if (inject && spec.condense_left_forward && oid > run_start) {
      result.left_run_start[a] = run_start;
      result.left_run_len[a] = oid - run_start;
    }
  }
  result.output_cardinality = oid;

  if (inject) {
    TableLineage& la = result.lineage.AddInput(left_name, &left);
    TableLineage& lb = result.lineage.AddInput(right_name, &right);
    result.lineage.set_output_cardinality(oid);
    if (opts.capture_backward) {
      la.backward = LineageIndex::FromArray(std::move(a_bw));
      lb.backward = LineageIndex::FromArray(std::move(b_bw));
    }
    if (opts.capture_forward) {
      if (!spec.condense_left_forward) {
        la.forward = LineageIndex::FromIndex(std::move(a_fw));
      }
      lb.forward = LineageIndex::FromIndex(std::move(b_fw));
    }
  }
  return result;
}

CrossResult CrossProductExec(const Table& left, const Table& right,
                             bool materialize_output) {
  CrossResult result;
  result.lineage.num_left = left.num_rows();
  result.lineage.num_right = right.num_rows();
  result.output = Table(ConcatSchema(left, right, "right"));
  if (!materialize_output) return result;
  const size_t left_cols = left.num_columns();
  result.output.Reserve(left.num_rows() * right.num_rows());
  for (rid_t a = 0; a < left.num_rows(); ++a) {
    for (rid_t b = 0; b < right.num_rows(); ++b) {
      result.output.AppendRowFrom(left, a);
      for (size_t c = 0; c < right.num_columns(); ++c) {
        result.output.mutable_column(left_cols + c)
            .AppendFrom(right.column(c), b);
      }
    }
  }
  return result;
}

}  // namespace smoke
