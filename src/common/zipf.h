// Zipfian and uniform random generators for the microbenchmark datasets
// zipf_{theta,n,g}(id, z, v) (paper Section 5).
#ifndef SMOKE_COMMON_ZIPF_H_
#define SMOKE_COMMON_ZIPF_H_

#include <cstdint>
#include <random>
#include <vector>

namespace smoke {

/// \brief Samples integers in [1, num_values] following a zipfian
/// distribution with skew parameter theta (theta = 0 is uniform).
///
/// Uses the inverse-CDF method with a precomputed cumulative table, which is
/// exact and fast for the value cardinalities used in the paper (<= 65536).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t num_values, double theta, uint64_t seed = 42);

  /// Returns the next sample in [1, num_values].
  int64_t Next();

  uint64_t num_values() const { return num_values_; }
  double theta() const { return theta_; }

 private:
  uint64_t num_values_;
  double theta_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> unif_{0.0, 1.0};
  std::vector<double> cdf_;  // cdf_[i] = P(value <= i+1)
};

/// Convenience uniform double in [lo, hi).
class UniformDouble {
 public:
  UniformDouble(double lo, double hi, uint64_t seed = 43)
      : rng_(seed), dist_(lo, hi) {}
  double Next() { return dist_(rng_); }

 private:
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> dist_;
};

/// Convenience uniform int64 in [lo, hi] inclusive.
class UniformInt {
 public:
  UniformInt(int64_t lo, int64_t hi, uint64_t seed = 44)
      : rng_(seed), dist_(lo, hi) {}
  int64_t Next() { return dist_(rng_); }

 private:
  std::mt19937_64 rng_;
  std::uniform_int_distribution<int64_t> dist_;
};

}  // namespace smoke

#endif  // SMOKE_COMMON_ZIPF_H_
