// Hashing utilities and a specialized open-addressing hash map for the hot
// paths (group-by and join keys). Tight integration (paper P1) requires the
// probe/insert loops to be inlineable and allocation-light.
#ifndef SMOKE_COMMON_HASH_H_
#define SMOKE_COMMON_HASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"

namespace smoke {

/// 64-bit finalizer (splitmix64). Good avalanche for integer keys.
inline uint64_t Hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over bytes, for composite/string keys.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// \brief Open-addressing hash map from int64 keys to a uint32 payload
/// (typically a slot index into a contiguous entry arena).
///
/// Linear probing, power-of-two capacity, max load factor 0.7. This is the
/// hash table that group-by and join builds construct during normal operator
/// execution and that lineage capture *reuses* (paper P4): the payload points
/// at an entry arena that capture augments with rid lists or oids.
class IntKeyMap {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  explicit IntKeyMap(size_t expected = 16) {
    size_t cap = 16;
    while (cap * 10 < expected * 16) cap <<= 1;  // ~0.6 initial load
    keys_.resize(cap);
    vals_.assign(cap, kNotFound);
    mask_ = cap - 1;
  }

  /// Returns the payload for `key`, or kNotFound.
  uint32_t Find(int64_t key) const {
    size_t i = Hash64(static_cast<uint64_t>(key)) & mask_;
    while (vals_[i] != kNotFound) {
      if (keys_[i] == key) return vals_[i];
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  /// Returns the existing payload for `key`, or inserts `fresh` and returns
  /// kNotFound (so the caller knows it created a new entry).
  uint32_t FindOrInsert(int64_t key, uint32_t fresh) {
    if ((size_ + 1) * 10 > (mask_ + 1) * 7) Rehash();
    size_t i = Hash64(static_cast<uint64_t>(key)) & mask_;
    while (vals_[i] != kNotFound) {
      if (keys_[i] == key) return vals_[i];
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    vals_[i] = fresh;
    ++size_;
    return kNotFound;
  }

  void Insert(int64_t key, uint32_t val) {
    uint32_t prev = FindOrInsert(key, val);
    SMOKE_DCHECK(prev == kNotFound);
    (void)prev;
  }

  size_t size() const { return size_; }

 private:
  void Rehash() {
    std::vector<int64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_vals = std::move(vals_);
    size_t cap = (mask_ + 1) * 2;
    keys_.assign(cap, 0);
    vals_.assign(cap, kNotFound);
    mask_ = cap - 1;
    for (size_t j = 0; j < old_vals.size(); ++j) {
      if (old_vals[j] == kNotFound) continue;
      size_t i = Hash64(static_cast<uint64_t>(old_keys[j])) & mask_;
      while (vals_[i] != kNotFound) i = (i + 1) & mask_;
      keys_[i] = old_keys[j];
      vals_[i] = old_vals[j];
    }
  }

  std::vector<int64_t> keys_;
  std::vector<uint32_t> vals_;  // kNotFound marks an empty slot
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace smoke

#endif  // SMOKE_COMMON_HASH_H_
