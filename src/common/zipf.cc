#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace smoke {

ZipfGenerator::ZipfGenerator(uint64_t num_values, double theta, uint64_t seed)
    : num_values_(num_values), theta_(theta), rng_(seed) {
  SMOKE_CHECK(num_values >= 1);
  cdf_.resize(num_values);
  double sum = 0.0;
  for (uint64_t i = 1; i <= num_values; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    cdf_[i - 1] = sum;
  }
  const double inv = 1.0 / sum;
  for (auto& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // guard against fp rounding
}

int64_t ZipfGenerator::Next() {
  const double u = unif_(rng_);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

}  // namespace smoke
