// Write-optimized rid container used inside lineage indexes.
#ifndef SMOKE_COMMON_RID_VEC_H_
#define SMOKE_COMMON_RID_VEC_H_

#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "common/types.h"

namespace smoke {

/// \brief Growable array of rids with the growth policy from the paper
/// (Section 3.1): initial capacity 10, grow by 1.5x on overflow, following
/// folly::fbvector. Array resizing dominates lineage capture cost, which is
/// why the container is ours: capture paths can pre-size it from cardinality
/// statistics (Smoke-I+TC / +EC) and benches can ablate the growth policy.
///
/// Intentionally minimal: no iterators-invalidation guarantees beyond
/// vector-like behavior, trivially relocatable payload (rid_t).
class RidVec {
 public:
  static constexpr size_t kInitialCapacity = 10;

  RidVec() = default;

  /// Constructs with exact pre-allocated capacity (cardinality hints).
  explicit RidVec(size_t capacity) { Reserve(capacity); }

  RidVec(const RidVec& other) { *this = other; }
  RidVec& operator=(const RidVec& other) {
    if (this == &other) return *this;
    size_ = 0;
    Reserve(other.size_);
    if (other.size_ > 0) {
      std::memcpy(data_, other.data_, other.size_ * sizeof(rid_t));
    }
    size_ = other.size_;
    return *this;
  }

  RidVec(RidVec&& other) noexcept
      : data_(other.data_),
        size_(other.size_),
        capacity_(other.capacity_),
        realloc_count_(other.realloc_count_) {
    other.data_ = nullptr;
    other.size_ = other.capacity_ = 0;
    other.realloc_count_ = 0;
  }
  RidVec& operator=(RidVec&& other) noexcept {
    if (this == &other) return *this;
    std::free(data_);
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    realloc_count_ = other.realloc_count_;
    other.data_ = nullptr;
    other.size_ = other.capacity_ = 0;
    other.realloc_count_ = 0;
    return *this;
  }

  ~RidVec() { std::free(data_); }

  void PushBack(rid_t rid) {
    if (size_ == capacity_) Grow();
    data_[size_++] = rid;
  }

  /// Appends `n` rids in one step (fragment merging). Allocates exactly —
  /// merge sites know the final size, so growth slack would be waste.
  void PushBackAll(const rid_t* src, size_t n) {
    if (n == 0) return;
    Reserve(size_ + n);
    std::memcpy(data_ + size_, src, n * sizeof(rid_t));
    size_ += n;
  }

  /// Ensures room for at least `capacity` elements (exact allocation; no
  /// growth slack). Used when cardinalities are known up-front.
  void Reserve(size_t capacity) {
    if (capacity <= capacity_) return;
    Reallocate(capacity);
  }

  void Clear() { size_ = 0; }

  rid_t operator[](size_t i) const {
    SMOKE_DCHECK(i < size_);
    return data_[i];
  }
  rid_t& operator[](size_t i) {
    SMOKE_DCHECK(i < size_);
    return data_[i];
  }

  const rid_t* data() const { return data_; }
  rid_t* data() { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  const rid_t* begin() const { return data_; }
  const rid_t* end() const { return data_ + size_; }

  /// Number of reallocations performed so far (for resize-cost ablations).
  uint32_t realloc_count() const { return realloc_count_; }

  size_t MemoryBytes() const { return capacity_ * sizeof(rid_t); }

 private:
  void Grow() {
    size_t next = capacity_ == 0
                      ? kInitialCapacity
                      : capacity_ + (capacity_ >> 1) + 1;  // 1.5x growth
    Reallocate(next);
  }

  void Reallocate(size_t capacity) {
    data_ = static_cast<rid_t*>(
        std::realloc(data_, capacity * sizeof(rid_t)));
    SMOKE_CHECK(data_ != nullptr);
    capacity_ = capacity;
    ++realloc_count_;
  }

  rid_t* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
  uint32_t realloc_count_ = 0;
};

}  // namespace smoke

#endif  // SMOKE_COMMON_RID_VEC_H_
