// Annotated synchronization primitives: thin wrappers over the standard
// library that carry Clang thread-safety capability attributes
// (common/thread_annotations.h).
//
// libstdc++'s std::mutex / std::lock_guard are not annotated, so a
// SMOKE_GUARDED_BY(mu_) field would be unprovable — the analysis never
// sees an acquisition. smoke::Mutex IS a capability; MutexLock is the
// scoped acquisition the analysis tracks; CondVar wraps
// std::condition_variable_any so waits take the annotated Mutex directly
// (the unlock/relock inside wait() is invisible to the analysis, which
// treats the lock as continuously held — the standard, sound-for-readers
// convention Abseil's CondVar uses too).
//
// Cost notes: Mutex is exactly a std::mutex; MutexLock is exactly a
// lock_guard. CondVar is a condition_variable_any, marginally heavier than
// condition_variable at the wait/notify boundary — all uses here are
// morsel- or batch-grained, where that boundary is noise.
#ifndef SMOKE_COMMON_MUTEX_H_
#define SMOKE_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/macros.h"
#include "common/thread_annotations.h"

namespace smoke {

/// \brief An annotated std::mutex: the unit of capability the thread-safety
/// analysis tracks. Use MutexLock for scopes; Lock/Unlock only where a
/// scope cannot express the protocol.
class SMOKE_LOCKABLE Mutex {
 public:
  Mutex() = default;
  SMOKE_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void Lock() SMOKE_ACQUIRE() { mu_.lock(); }
  void Unlock() SMOKE_RELEASE() { mu_.unlock(); }
  bool TryLock() SMOKE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Injects "this mutex is held" into the analysis without touching the
  /// mutex — for lambda bodies (analyzed as separate functions) that run
  /// under a lock taken by their caller, e.g. CondVar wait predicates.
  void AssertHeld() const SMOKE_ASSERT_CAPABILITY(this) {}

  // BasicLockable surface for std::condition_variable_any (CondVar::Wait
  // releases and reacquires through these).
  void lock() SMOKE_ACQUIRE() { mu_.lock(); }
  void unlock() SMOKE_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// \brief RAII scope: acquires `mu` for its lifetime. The analysis treats
/// the scope as holding the capability.
class SMOKE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SMOKE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SMOKE_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief MutexLock with early release, for the collect-under-lock /
/// run-callbacks-after-unlock pattern (epoch reclamation drains).
class SMOKE_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) SMOKE_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }
  ~ReleasableMutexLock() SMOKE_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }
  /// Unlocks now; the destructor becomes a no-op. Call at most once.
  void Release() SMOKE_RELEASE() {
    SMOKE_DCHECK(mu_ != nullptr);
    mu_->Unlock();
    mu_ = nullptr;
  }
  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable over smoke::Mutex. Waits require the mutex —
/// the annotation documents and enforces the protocol; predicates must open
/// with mu.AssertHeld() (see thread_annotations.h conventions).
class CondVar {
 public:
  CondVar() = default;
  SMOKE_DISALLOW_COPY_AND_ASSIGN(CondVar);

  /// Atomically releases `mu`, blocks, reacquires before returning. The
  /// body is exempt from analysis: the transient unlock inside
  /// condition_variable_any::wait is the one protocol the capability model
  /// cannot express; callers observe lock-held on entry and exit, which is
  /// the contract REQUIRES states.
  void Wait(Mutex& mu) SMOKE_REQUIRES(mu) SMOKE_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  /// Waits until pred() holds. pred runs with `mu` held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) SMOKE_REQUIRES(mu)
      SMOKE_NO_THREAD_SAFETY_ANALYSIS {
    while (!pred()) cv_.wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace smoke

#endif  // SMOKE_COMMON_MUTEX_H_
