// Clang thread-safety annotation macros (Abseil-style, SMOKE_ prefix).
//
// These expand to Clang's capability attributes when compiling under Clang
// and to nothing everywhere else, so annotated code builds unchanged under
// GCC/MSVC. Under `clang++ -Wthread-safety -Werror=thread-safety` (the CI
// "static-analysis" job; locally: -DSMOKE_THREAD_SAFETY is implied by a
// Clang toolchain) every locking invariant written with these macros is a
// compile-time theorem: reading a SMOKE_GUARDED_BY(mu) field without
// holding mu, calling a SMOKE_REQUIRES(mu) function unlocked, or
// re-entering a SMOKE_EXCLUDES(mu) function with mu held is a build error,
// not a TSan roll of the interleaving dice.
//
// Conventions (enforced by tools/check_annotations.py):
//  - every mutex member (smoke::Mutex, std::mutex, std::shared_mutex) must
//    appear in at least one SMOKE_GUARDED_BY / SMOKE_REQUIRES /
//    SMOKE_ACQUIRE / SMOKE_RELEASE / SMOKE_EXCLUDES annotation;
//  - helpers with a caller-holds-lock contract are named *Locked and
//    annotated SMOKE_REQUIRES(mu_) — the name is for humans, the attribute
//    is for the compiler;
//  - lambdas that run with a lock held (condition-variable predicates)
//    open with mu_.AssertHeld(): Clang analyzes lambda bodies as separate
//    functions, and the assertion re-establishes the capability inside.
#ifndef SMOKE_COMMON_THREAD_ANNOTATIONS_H_
#define SMOKE_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SMOKE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SMOKE_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a class to be a capability ("mutex") the analysis can track.
#define SMOKE_CAPABILITY(x) SMOKE_THREAD_ANNOTATION(capability(x))
#define SMOKE_LOCKABLE SMOKE_CAPABILITY("mutex")

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SMOKE_SCOPED_CAPABILITY SMOKE_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding the given capability.
#define SMOKE_GUARDED_BY(x) SMOKE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the pointee (not the pointer) is protected by `x`.
#define SMOKE_PT_GUARDED_BY(x) SMOKE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while holding the given capabilities
/// (caller-holds-lock contract; pairs with the *Locked naming convention).
#define SMOKE_REQUIRES(...) \
  SMOKE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SMOKE_REQUIRES_SHARED(...) \
  SMOKE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define SMOKE_ACQUIRE(...) \
  SMOKE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SMOKE_ACQUIRE_SHARED(...) \
  SMOKE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define SMOKE_RELEASE(...) \
  SMOKE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SMOKE_RELEASE_SHARED(...) \
  SMOKE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define SMOKE_TRY_ACQUIRE(...) \
  SMOKE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock / re-entrancy guard on
/// public entry points of internally synchronized classes).
#define SMOKE_EXCLUDES(...) SMOKE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held; injects the fact into the
/// analysis (used at the top of lock-held lambdas).
#define SMOKE_ASSERT_CAPABILITY(x) SMOKE_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability (lock accessors).
#define SMOKE_RETURN_CAPABILITY(x) SMOKE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis of one function body. Every use must
/// carry a comment explaining why the invariant holds anyway.
#define SMOKE_NO_THREAD_SAFETY_ANALYSIS \
  SMOKE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SMOKE_COMMON_THREAD_ANNOTATIONS_H_
