// A minimal Status type for error reporting, following the Arrow/RocksDB
// convention of returning Status from fallible API-level operations.
//
// Status (and Result<T>) are [[nodiscard]]: a call site that drops a
// returned Status is a compile error under -Werror=unused-result (on by
// default for all smoke targets — see smoke_warnings in CMakeLists.txt).
// Intentional drops must say so: `engine.DropTable(n).IgnoreError();` —
// explicit at the call site and grep-able (`git grep IgnoreError`).
#ifndef SMOKE_COMMON_STATUS_H_
#define SMOKE_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/macros.h"

namespace smoke {

/// \brief Outcome of a fallible operation.
///
/// Internal invariant violations abort via SMOKE_CHECK; user-facing errors
/// (unknown table, schema mismatch, bad parameters) surface as a Status.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kUnsupported,
    /// The request is well-formed but the system is in a state that forbids
    /// it (e.g. appending to a table borrowed by a non-refreshable retained
    /// result) — fix the state and retry, don't fix the request.
    kFailedPrecondition,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Explicitly discards this status. The only sanctioned way to drop an
  /// error: `(void)` casts are banned by convention (they defeat the
  /// greppability), and a bare drop fails the build.
  void IgnoreError() const {}

  std::string ToString() const {
    if (ok()) return "OK";
    std::string prefix;
    switch (code_) {
      case Code::kInvalidArgument: prefix = "Invalid argument: "; break;
      case Code::kNotFound:        prefix = "Not found: ";        break;
      case Code::kAlreadyExists:   prefix = "Already exists: ";   break;
      case Code::kUnsupported:     prefix = "Unsupported: ";      break;
      case Code::kFailedPrecondition:
        prefix = "Failed precondition: ";
        break;
      default:                     prefix = "";                   break;
    }
    return prefix + msg_;
  }

 private:
  Code code_;
  std::string msg_;
};

/// \brief A Status or a value: the return type for fallible operations
/// whose result is awkward as an out-parameter (pointers into internal
/// state, movable handles). Accessing value() on an error aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from an error Status (so `return Status::NotFound(...)` works
  /// in a Result-returning function). Constructing from OK is a bug: OK
  /// must carry a value.
  Result(Status s) : status_(std::move(s)) {  // NOLINT(runtime/explicit)
    SMOKE_CHECK(!status_.ok());
  }
  /// Implicit from a value (so `return v;` works).
  Result(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SMOKE_CHECK(status_.ok());
    return value_;
  }
  T& value() & {
    SMOKE_CHECK(status_.ok());
    return value_;
  }
  T&& value() && {
    SMOKE_CHECK(status_.ok());
    return std::move(value_);
  }

  void IgnoreError() const {}

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK Status to the caller; continues on OK.
#define SMOKE_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::smoke::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

#define SMOKE_STATUS_CONCAT_IMPL(a, b) a##b
#define SMOKE_STATUS_CONCAT(a, b) SMOKE_STATUS_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its Status
/// to the caller, otherwise assigns the value to `lhs`, which may declare
/// a new variable:
///
///   SMOKE_ASSIGN_OR_RETURN(const Table* t, catalog.FindTable(name));
#define SMOKE_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  SMOKE_ASSIGN_OR_RETURN_IMPL(                                       \
      SMOKE_STATUS_CONCAT(_smoke_result_, __LINE__), lhs, rexpr)

#define SMOKE_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value()

}  // namespace smoke

#endif  // SMOKE_COMMON_STATUS_H_
