// A minimal Status type for error reporting, following the Arrow/RocksDB
// convention of returning Status from fallible API-level operations.
#ifndef SMOKE_COMMON_STATUS_H_
#define SMOKE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace smoke {

/// \brief Outcome of a fallible operation.
///
/// Internal invariant violations abort via SMOKE_CHECK; user-facing errors
/// (unknown table, schema mismatch, bad parameters) surface as a Status.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kUnsupported,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string prefix;
    switch (code_) {
      case Code::kInvalidArgument: prefix = "Invalid argument: "; break;
      case Code::kNotFound:        prefix = "Not found: ";        break;
      case Code::kAlreadyExists:   prefix = "Already exists: ";   break;
      case Code::kUnsupported:     prefix = "Unsupported: ";      break;
      default:                     prefix = "";                   break;
    }
    return prefix + msg_;
  }

 private:
  Code code_;
  std::string msg_;
};

#define SMOKE_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::smoke::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace smoke

#endif  // SMOKE_COMMON_STATUS_H_
