// Fundamental scalar types shared across the engine.
#ifndef SMOKE_COMMON_TYPES_H_
#define SMOKE_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <variant>

namespace smoke {

/// Record identifier: the position of a tuple within its relation. Lineage
/// indexes map rids to rids; a lookup "simply indexes into the relation's
/// array" (paper Section 3.1). 32 bits halve index memory relative to size_t
/// and cover all datasets in the paper.
using rid_t = uint32_t;

/// Sentinel for "no output" in forward rid arrays (e.g., a selection input
/// tuple that did not pass the predicate).
inline constexpr rid_t kInvalidRid = std::numeric_limits<rid_t>::max();

/// Physical column types. The engine is typed at the column level; rows are
/// materialized views over columns addressed by rid.
enum class DataType : uint8_t {
  kInt64 = 0,
  kFloat64 = 1,
  kString = 2,
};

inline const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:   return "int64";
    case DataType::kFloat64: return "float64";
    case DataType::kString:  return "string";
  }
  return "unknown";
}

/// A dynamically typed scalar, used at API boundaries (constants in
/// predicates, row accessors in tests). Hot loops never touch Value.
using Value = std::variant<int64_t, double, std::string>;

inline DataType ValueType(const Value& v) {
  switch (v.index()) {
    case 0: return DataType::kInt64;
    case 1: return DataType::kFloat64;
    default: return DataType::kString;
  }
}

inline std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0: return std::to_string(std::get<int64_t>(v));
    case 1: return std::to_string(std::get<double>(v));
    default: return std::get<std::string>(v);
  }
}

}  // namespace smoke

#endif  // SMOKE_COMMON_TYPES_H_
