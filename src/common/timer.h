// Wall-clock timing helpers for the benchmark harness.
#ifndef SMOKE_COMMON_TIMER_H_
#define SMOKE_COMMON_TIMER_H_

#include <chrono>
#include <cmath>
#include <vector>

namespace smoke {

/// Simple steady-clock stopwatch reporting milliseconds.
class WallTimer {
 public:
  WallTimer() { Start(); }
  void Start() { start_ = Clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Aggregate statistics over repeated runs (paper: 15 runs after 3 warmups).
struct RunStats {
  double mean_ms = 0;
  double stddev_ms = 0;
  double min_ms = 0;
  double max_ms = 0;

  static RunStats From(const std::vector<double>& samples) {
    RunStats s;
    if (samples.empty()) return s;
    double sum = 0;
    s.min_ms = samples[0];
    s.max_ms = samples[0];
    for (double v : samples) {
      sum += v;
      if (v < s.min_ms) s.min_ms = v;
      if (v > s.max_ms) s.max_ms = v;
    }
    s.mean_ms = sum / static_cast<double>(samples.size());
    double var = 0;
    for (double v : samples) var += (v - s.mean_ms) * (v - s.mean_ms);
    s.stddev_ms = std::sqrt(var / static_cast<double>(samples.size()));
    return s;
  }
};

}  // namespace smoke

#endif  // SMOKE_COMMON_TIMER_H_
