// Common macros used across the Smoke codebase.
#ifndef SMOKE_COMMON_MACROS_H_
#define SMOKE_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `cond` is false. Used for internal invariants
// that indicate programming errors (not data errors); data errors are
// reported through Status.
#define SMOKE_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SMOKE_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define SMOKE_DCHECK(cond) ((void)0)
#else
#define SMOKE_DCHECK(cond) SMOKE_CHECK(cond)
#endif

#define SMOKE_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

#endif  // SMOKE_COMMON_MACROS_H_
