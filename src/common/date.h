// Calendar helpers. Dates are stored in columns as int64 yyyymmdd (ordering
// matches chronological order; EXTRACT(YEAR/MONTH) is integer arithmetic).
#ifndef SMOKE_COMMON_DATE_H_
#define SMOKE_COMMON_DATE_H_

#include <cstdint>

namespace smoke {

/// Days from 1970-01-01 to y-m-d (Howard Hinnant's civil-days algorithm).
constexpr int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

/// Inverse of DaysFromCivil.
constexpr void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yy + (*m <= 2);
}

/// yyyymmdd encoding of a day number.
constexpr int64_t YmdFromDays(int64_t days) {
  int64_t y = 0;
  unsigned m = 0, d = 0;
  CivilFromDays(days, &y, &m, &d);
  return y * 10000 + static_cast<int64_t>(m) * 100 + d;
}

/// Day number of a yyyymmdd date.
constexpr int64_t DaysFromYmd(int64_t ymd) {
  return DaysFromCivil(ymd / 10000, static_cast<unsigned>((ymd / 100) % 100),
                       static_cast<unsigned>(ymd % 100));
}

}  // namespace smoke

#endif  // SMOKE_COMMON_DATE_H_
