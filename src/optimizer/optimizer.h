// Rule-based LogicalPlan rewriter (ROADMAP "speed" tentpole; modeled on
// DuckDB's ExpressionRewriter: a small Rule interface driven to fixed
// point).
//
// The optimizer runs by default inside ExecutePlan and TraceBuilder::
// Compile (CaptureOptions::optimize / TraceBuilder::Optimize opt out).
// Every rewrite preserves results AND lineage bit-identically: rules only
// fire where the composed lineage fragments are provably unchanged — e.g.
// selects push through identity-fragment operators (project/derive), into
// both set-op children (value-class uniform predicates), and into Trace
// nodes (the fused filter composes the same select fragment the literal
// plan would); Trace∘Trace chains fuse into one node whose per-hop
// fragments run through the identical lineage/compose calls the executor
// would make, minus the intermediate endpoint materialization.
//
// Shipping rules:
//   fold_constants             constant folding over engine/expr ASTs
//   merge_selects              Select(Select(x)) -> Select(x)
//   push_select_through_project / _derive / _set_op
//   fuse_trace_hops            Trace∘Trace -> one Trace with fused hops
//   push_select_into_trace     Select(Trace(x)) -> Trace(x) with filters
//   elide_identity_project, merge_projects, elide_empty_select
#ifndef SMOKE_OPTIMIZER_OPTIMIZER_H_
#define SMOKE_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "optimizer/explain.h"
#include "optimizer/schema_infer.h"
#include "plan/plan.h"

namespace smoke {

struct OptimizerOptions {
  bool constant_folding = true;
  bool predicate_pushdown = true;  ///< incl. push into kTrace
  bool trace_fusion = true;
  bool elision = true;             ///< select-true, identity project
  int max_passes = 10;
  int max_applications = 200;      ///< runaway-rule backstop
};

namespace optimizer {

/// \brief Mutable rewrite workspace. Node ids stay stable while rules
/// rewrite contents in place (push-down rules swap parent/child payloads;
/// fusion/elision rules overwrite the parent with derived content and
/// orphan the child). Rules may also append nodes (Insert) with a
/// fractional order key; Freeze() re-emits the reachable nodes in key
/// order, which preserves the relative order of the original nodes — scan
/// order is lineage-input order, so it must survive the rebuild.
struct WorkPlan {
  std::vector<PlanNode> nodes;
  std::vector<double> keys;  ///< topological order keys (child < parent)
  int root = -1;

  // Derived state, recomputed by Refresh() after every rule application.
  std::vector<Schema> schemas;
  std::vector<int> parents;  ///< reachable parent count
  std::vector<uint8_t> reachable;

  static Status FromPlan(const LogicalPlan& plan, WorkPlan* out);

  /// Recomputes reachability, parent counts, and schemas. Fails when the
  /// current plan shape is malformed (the schema-inference validation).
  Status Refresh();

  /// Appends a node ordered strictly between keys `lo` and `hi`.
  int Insert(PlanNode node, double lo, double hi);

  const PlanNode& node(int id) const {
    return nodes[static_cast<size_t>(id)];
  }
  const Schema& schema(int id) const {
    return schemas[static_cast<size_t>(id)];
  }
  /// True when `id` has exactly one reachable parent — content-copy
  /// rewrites on shared (DAG) children would duplicate subplans and change
  /// the lineage merge structure, so rules require this.
  bool SingleParent(int id) const {
    return parents[static_cast<size_t>(id)] == 1;
  }

  /// Rebuilds a validated LogicalPlan from the reachable nodes.
  Status Freeze(LogicalPlan* out) const;
};

/// One rewrite rule (match + apply in one step, DuckDB-rewriter style).
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;

  /// Attempts to rewrite at node `id` (reachable, schemas fresh). Returns
  /// true when the rewrite applied and fills `*detail`; the driver then
  /// Refresh()es and restarts the scan.
  virtual bool Apply(WorkPlan* wp, int id, std::string* detail) const = 0;
};

/// The rule set `options` enables, in application order.
std::vector<std::unique_ptr<Rule>> MakeRules(const OptimizerOptions& options);

}  // namespace optimizer

/// Rewrites `plan` to fixed point and records what happened in `*explain`
/// (pass nullptr to skip the record). The input plan is untouched; `*out`
/// is rebuilt through PlanBuilder and re-validated. Optimized plans
/// produce bit-identical results and lineage to the input plan.
Status OptimizePlan(const LogicalPlan& plan, LogicalPlan* out,
                    PlanExplain* explain,
                    const OptimizerOptions& options = OptimizerOptions{});

}  // namespace smoke

#endif  // SMOKE_OPTIMIZER_OPTIMIZER_H_
