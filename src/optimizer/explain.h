// EXPLAIN-style record of what the optimizer did to a plan: which rewrite
// rules fired (and where), which physical trace strategy the cost model
// resolved, and the final plan shape. Attached to PlanResult / LineageQuery
// so tests can pin optimizer decisions (assert the chosen strategy, not
// just the result) and users can see *why* a plan runs the way it does.
#ifndef SMOKE_OPTIMIZER_EXPLAIN_H_
#define SMOKE_OPTIMIZER_EXPLAIN_H_

#include <string>
#include <vector>

namespace smoke {

struct PlanExplain {
  /// One rule application: rule name, the label of the node it fired on,
  /// and a human-readable detail ("pushed 2 predicates below project").
  struct AppliedRule {
    std::string rule;
    std::string node;
    std::string detail;
  };

  std::vector<AppliedRule> rules;

  /// Trace compiles only: the resolved physical strategy ("indexed",
  /// "lazy", "skipping", "cube") and the cost-model candidate summary that
  /// justified it. Empty for plain ExecutePlan runs.
  std::string strategy;
  std::string strategy_detail;

  /// Rendering of the optimized plan (LogicalPlan::ToString).
  std::string plan_text;

  /// True when the rewriter ran (even if no rule fired).
  bool optimized = false;

  bool HasRule(const std::string& rule) const {
    for (const AppliedRule& r : rules) {
      if (r.rule == rule) return true;
    }
    return false;
  }

  /// Multi-line EXPLAIN dump.
  std::string ToString() const {
    std::string s;
    if (!strategy.empty()) {
      s += "strategy: " + strategy;
      if (!strategy_detail.empty()) s += "  [" + strategy_detail + "]";
      s += "\n";
    }
    s += "rules:";
    if (rules.empty()) {
      s += " (none)\n";
    } else {
      s += "\n";
      for (const AppliedRule& r : rules) {
        s += "  " + r.rule + " @ " + r.node;
        if (!r.detail.empty()) s += ": " + r.detail;
        s += "\n";
      }
    }
    if (!plan_text.empty()) {
      s += "plan:\n";
      size_t start = 0;
      while (start < plan_text.size()) {
        size_t nl = plan_text.find('\n', start);
        if (nl == std::string::npos) nl = plan_text.size();
        s += "  " + plan_text.substr(start, nl - start) + "\n";
        start = nl + 1;
      }
    }
    return s;
  }
};

}  // namespace smoke

#endif  // SMOKE_OPTIMIZER_EXPLAIN_H_
