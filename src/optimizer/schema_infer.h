// Static output-schema inference over LogicalPlan nodes.
//
// Computes the schema every node would produce under the Smoke capture
// modes (kNone/kInject/kDefer — the modes multi-operator plans support;
// logic-mode annotation columns are a single-block concern) and validates
// column references along the way: predicate columns and types, projection
// and group-by key ranges, join key types, set-op column compatibility,
// derive bindability. Malformed plans are rejected with a clear Status at
// optimize time instead of an executor-time failure or a SMOKE_CHECK abort
// deep inside a kernel.
//
// The rewriter (optimizer/optimizer.h) leans on these schemas to remap
// predicate columns across Project/SetOp boundaries and to prove rewrites
// type-safe before applying them.
#ifndef SMOKE_OPTIMIZER_SCHEMA_INFER_H_
#define SMOKE_OPTIMIZER_SCHEMA_INFER_H_

#include <vector>

#include "common/status.h"
#include "plan/plan.h"
#include "storage/schema.h"

namespace smoke {

/// Infers the output schema of every node reachable from `root` into
/// `(*out)[id]` (unreachable nodes keep an empty schema). `nodes` need not
/// be topologically ordered — the walk recurses from the root — but must be
/// acyclic (LogicalPlan guarantees this; the optimizer workspace preserves
/// it).
Status InferNodeSchemas(const std::vector<PlanNode>& nodes, int root,
                        std::vector<Schema>* out);

/// Convenience wrapper over a validated plan.
Status InferPlanSchemas(const LogicalPlan& plan, std::vector<Schema>* out);

/// Validates `p` against `schema` (column range, type match, rhs column).
Status ValidatePredicate(const Schema& schema, const Predicate& p,
                         const std::string& node_label);

}  // namespace smoke

#endif  // SMOKE_OPTIMIZER_SCHEMA_INFER_H_
