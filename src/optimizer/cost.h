// Cost-based trace-strategy selection (the kAuto resolution in
// TraceBuilder::ResolveStrategy).
//
// The model prices each physical strategy from the retained query's capture
// artifacts and store statistics — posting-list cardinalities (RidIndex /
// RidSetStats), partition fan-out (PartitionedRidIndex), codec and eviction
// state (LineageStoreStats via TraceSource::stats) — against the seed-set
// cardinality of the trace at hand, then picks the cheapest *semantically
// transparent* candidate:
//  - kIndexed and kSkipping compete on estimated rids touched;
//  - kLazy is the evicted-index fallback only: it changes the compiled
//    plan's output shape (a relation scan carries no rid column), and a
//    pruned or push-down-replaced index must error rather than silently
//    rescan, so lazy is considered only when the source is flagged evicted;
//  - kCube is priced and reported but never auto-chosen (its lineage is not
//    chainable; it stays opt-in).
// When nothing is feasible the report resolves to kIndexed so execution
// surfaces the real error.
#ifndef SMOKE_OPTIMIZER_COST_H_
#define SMOKE_OPTIMIZER_COST_H_

#include <string>
#include <vector>

#include "query/trace_builder.h"

namespace smoke {

/// One candidate strategy's feasibility and estimated cost (rids touched).
struct StrategyCost {
  bool feasible = false;
  double cost = 0;
  std::string note;  ///< why infeasible / what the estimate is based on
};

struct TraceCostReport {
  StrategyCost indexed;
  StrategyCost lazy;
  StrategyCost skipping;
  StrategyCost cube;
  TraceStrategy chosen = TraceStrategy::kIndexed;
  uint32_t skip_code = 0;  ///< valid when skipping is feasible

  /// One-line candidate summary for EXPLAIN (PlanExplain::strategy_detail).
  std::string Summary() const;
};

/// True when the source's partitioned skip index covers `relation` (the
/// skip push-down partitions the fact table's backward lists).
bool SkipCoversRelation(const TraceSource& src, const std::string& relation);

/// Resolves the data-skipping partition code: the skip index must cover the
/// traced relation and be resident, every partition column must be pinned by
/// a constant equality predicate, and the combined value must name an
/// existing partition. Encoding matches BuildDictionary / DictKeyOfRow.
bool ResolveSkipCode(const TraceSource& src, const std::string& relation,
                     const std::vector<Predicate>& filters, uint32_t* code);

/// True when the lazy rescan can answer this backward trace transparently
/// (dim-free SPJA, fact group keys, a single in-range seed over the fact
/// relation). Stricter than the explicit kLazy strategy, which permits dims
/// because the paper's baseline opts in.
bool LazyFeasible(const TraceSource& src, const std::string& relation,
                  const std::vector<rid_t>& seeds);

/// Prices every strategy for a single-hop backward trace and picks one.
TraceCostReport CostTraceStrategies(const TraceSource& src,
                                    const std::string& relation,
                                    const std::vector<rid_t>& seeds,
                                    const std::vector<Predicate>& filters);

/// Shard-granularity skip pricing for backward traces over a sharded
/// retained result (shard/coordinator.h). Two transparent candidates answer
/// the same trace with identical rids: probing the single composed
/// output→relation index, or fanning out through the retained per-shard
/// indexes (an output→region probe, then one per-shard probe per touched
/// region row). Fan-out wins when the seed set is selective — the expected
/// touched-shard count (balls-into-bins over `num_shards`) stays below the
/// full fan-out and the per-shard indexes keep the probes small and local;
/// a broad seed set that touches every shard anyway pays fan-out's second
/// indirection for nothing.
struct ShardTraceCostReport {
  StrategyCost fan_out;
  StrategyCost composed;
  bool use_fan_out = false;
  double expected_shards = 0;  ///< expected distinct shards touched
};
ShardTraceCostReport CostShardTrace(size_t seed_count, size_t num_shards,
                                    size_t output_rows);

}  // namespace smoke

#endif  // SMOKE_OPTIMIZER_COST_H_
