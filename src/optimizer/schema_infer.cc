#include "optimizer/schema_infer.h"

#include <string>

namespace smoke {

namespace {

Status OutOfRange(const std::string& what, int col,
                  const std::string& label) {
  return Status::InvalidArgument(what + " column " + std::to_string(col) +
                                 " out of range in node '" + label + "'");
}

/// Walks a ScalarExpr, checking every column reference against `schema`
/// (CompiledExpr binds int64/float64 payloads and aborts on strings).
Status ValidateScalarExpr(const Schema& schema, const ScalarExpr& e,
                          const std::string& label) {
  switch (e.op) {
    case ScalarExpr::Op::kCol: {
      if (e.col < 0 || static_cast<size_t>(e.col) >= schema.num_fields()) {
        return OutOfRange("aggregate expression", e.col, label);
      }
      DataType t = schema.field(static_cast<size_t>(e.col)).type;
      if (t != DataType::kInt64 && t != DataType::kFloat64) {
        return Status::InvalidArgument(
            "aggregate expression reads non-numeric column " +
            std::to_string(e.col) + " in node '" + label + "'");
      }
      return Status::OK();
    }
    case ScalarExpr::Op::kConst:
      return Status::OK();
    case ScalarExpr::Op::kIndicator:
      if (e.pred == nullptr) {
        return Status::InvalidArgument("indicator without predicate in '" +
                                       label + "'");
      }
      return ValidatePredicate(schema, *e.pred, label);
    case ScalarExpr::Op::kSqrt:
      if (e.left == nullptr) {
        return Status::InvalidArgument("sqrt without operand in '" + label +
                                       "'");
      }
      return ValidateScalarExpr(schema, *e.left, label);
    default: {
      if (e.left == nullptr || e.right == nullptr) {
        return Status::InvalidArgument(
            "binary scalar expression missing an operand in '" + label + "'");
      }
      SMOKE_RETURN_NOT_OK(ValidateScalarExpr(schema, *e.left, label));
      return ValidateScalarExpr(schema, *e.right, label);
    }
  }
}

Status ValidateGroupExpr(const Schema& schema, const GroupExpr& g,
                         const std::string& label) {
  if (g.col < 0 || static_cast<size_t>(g.col) >= schema.num_fields()) {
    return OutOfRange("derive expression '" + g.name + "'", g.col, label);
  }
  DataType t = schema.field(static_cast<size_t>(g.col)).type;
  DataType want = g.kind == GroupExpr::Kind::kScale100 ? DataType::kFloat64
                                                       : DataType::kInt64;
  if (t != want) {
    return Status::InvalidArgument(
        "derive expression '" + g.name + "' needs a " +
        std::string(DataTypeName(want)) + " column in node '" + label + "'");
  }
  return Status::OK();
}

/// Output field of aggregate `spec` — mirrors AggLayout::OutputField
/// without needing a bound table.
Field AggOutputField(const AggSpec& spec) {
  return Field{spec.name, spec.op == AggOp::kCount ? DataType::kInt64
                                                   : DataType::kFloat64};
}

struct Inference {
  const std::vector<PlanNode>& nodes;
  std::vector<Schema>& schemas;
  std::vector<uint8_t> done;

  Inference(const std::vector<PlanNode>& n, std::vector<Schema>& s)
      : nodes(n), schemas(s), done(n.size(), 0) {}

  Status Infer(int id);
  Status InferNode(const PlanNode& n, Schema* out);
};

Status Inference::Infer(int id) {
  if (id < 0 || static_cast<size_t>(id) >= nodes.size()) {
    return Status::InvalidArgument("plan node id " + std::to_string(id) +
                                   " out of range");
  }
  if (done[static_cast<size_t>(id)]) return Status::OK();
  // Mark before recursing: LogicalPlan ids are acyclic by construction, so
  // this only guards against hand-built cycles reaching us pre-validation.
  done[static_cast<size_t>(id)] = 1;
  for (int c : nodes[static_cast<size_t>(id)].children) {
    SMOKE_RETURN_NOT_OK(Infer(c));
  }
  return InferNode(nodes[static_cast<size_t>(id)],
                   &schemas[static_cast<size_t>(id)]);
}

Status Inference::InferNode(const PlanNode& n, Schema* out) {
  auto child_schema = [this, &n](size_t k) -> const Schema& {
    return schemas[static_cast<size_t>(n.children[k])];
  };
  switch (n.kind) {
    case PlanOpKind::kScan: {
      if (n.table == nullptr) {
        return Status::InvalidArgument("scan '" + n.label + "' has no table");
      }
      *out = n.table->schema();
      return Status::OK();
    }
    case PlanOpKind::kSelect: {
      const Schema& in = child_schema(0);
      for (const Predicate& p : n.predicates) {
        SMOKE_RETURN_NOT_OK(ValidatePredicate(in, p, n.label));
      }
      *out = in;
      return Status::OK();
    }
    case PlanOpKind::kProject: {
      const Schema& in = child_schema(0);
      Schema s;
      for (int c : n.columns) {
        if (c < 0 || static_cast<size_t>(c) >= in.num_fields()) {
          return OutOfRange("projection", c, n.label);
        }
        s.AddField(in.field(static_cast<size_t>(c)).name,
                   in.field(static_cast<size_t>(c)).type);
      }
      *out = std::move(s);
      return Status::OK();
    }
    case PlanOpKind::kHashJoin: {
      const Schema& left = child_schema(0);
      const Schema& right = child_schema(1);
      if (n.join.left_key < 0 ||
          static_cast<size_t>(n.join.left_key) >= left.num_fields()) {
        return OutOfRange("join left key", n.join.left_key, n.label);
      }
      if (n.join.right_key < 0 ||
          static_cast<size_t>(n.join.right_key) >= right.num_fields()) {
        return OutOfRange("join right key", n.join.right_key, n.label);
      }
      if (left.field(static_cast<size_t>(n.join.left_key)).type !=
              DataType::kInt64 ||
          right.field(static_cast<size_t>(n.join.right_key)).type !=
              DataType::kInt64) {
        return Status::InvalidArgument("hash-join keys must be int64 columns"
                                       " (node '" + n.label + "')");
      }
      // Mirrors hash_join.cc OutputSchema for the Smoke modes (the logic
      // modes' prov columns are a single-block concern).
      Schema s = left;
      const std::string& right_name =
          nodes[static_cast<size_t>(n.children[1])].label;
      for (const Field& f : right.fields()) {
        std::string name = f.name;
        if (s.IndexOf(name) >= 0) name = right_name + "_" + name;
        s.AddField(std::move(name), f.type);
      }
      *out = std::move(s);
      return Status::OK();
    }
    case PlanOpKind::kGroupBy: {
      const Schema& in = child_schema(0);
      Schema s;
      for (int k : n.group_by.keys) {
        if (k < 0 || static_cast<size_t>(k) >= in.num_fields()) {
          return OutOfRange("group-by key", k, n.label);
        }
        s.AddField(in.field(static_cast<size_t>(k)).name,
                   in.field(static_cast<size_t>(k)).type);
      }
      for (const AggSpec& a : n.group_by.aggs) {
        SMOKE_RETURN_NOT_OK(ValidateScalarExpr(in, a.expr, n.label));
        Field f = AggOutputField(a);
        s.AddField(f.name, f.type);
      }
      if (!n.pushdown.empty()) {
        for (const Predicate& p : n.pushdown.sel_fact) {
          SMOKE_RETURN_NOT_OK(ValidatePredicate(in, p, n.label));
        }
        for (int c : n.pushdown.skip_cols) {
          if (c < 0 || static_cast<size_t>(c) >= in.num_fields()) {
            return OutOfRange("skip push-down", c, n.label);
          }
        }
      }
      *out = std::move(s);
      return Status::OK();
    }
    case PlanOpKind::kSetOp: {
      const Schema& a = child_schema(0);
      const Schema& b = child_schema(1);
      if (n.set_op == SetOpKind::kBagUnion) {
        if (a.num_fields() != b.num_fields()) {
          return Status::InvalidArgument(
              "bag union children have different widths (node '" + n.label +
              "')");
        }
        for (size_t i = 0; i < a.num_fields(); ++i) {
          if (a.field(i).type != b.field(i).type) {
            return Status::InvalidArgument(
                "bag union column " + std::to_string(i) +
                " types differ (node '" + n.label + "')");
          }
        }
        *out = a;
        return Status::OK();
      }
      Schema s;
      for (int c : n.set_cols) {
        if (c < 0 || static_cast<size_t>(c) >= a.num_fields() ||
            static_cast<size_t>(c) >= b.num_fields()) {
          return OutOfRange("set-op", c, n.label);
        }
        if (a.field(static_cast<size_t>(c)).type !=
            b.field(static_cast<size_t>(c)).type) {
          return Status::InvalidArgument(
              "set-op column " + std::to_string(c) + " types differ (node '" +
              n.label + "')");
        }
        s.AddField(a.field(static_cast<size_t>(c)).name,
                   a.field(static_cast<size_t>(c)).type);
      }
      *out = std::move(s);
      return Status::OK();
    }
    case PlanOpKind::kSpjaBlock: {
      // Children are [fact, dim...] scans; mirror the γagg output schema in
      // spja.cc. ColRef/filters validate against the child schemas.
      const Schema& fact = child_schema(0);
      auto ref_schema = [&](int table) -> const Schema& {
        return table == ColRef::kFact
                   ? fact
                   : schemas[static_cast<size_t>(
                         n.children[1 + static_cast<size_t>(table)])];
      };
      for (const Predicate& p : n.spja.fact_filters) {
        SMOKE_RETURN_NOT_OK(ValidatePredicate(fact, p, n.label));
      }
      for (size_t j = 0; j < n.spja.dims.size(); ++j) {
        const SPJADim& d = n.spja.dims[j];
        const Schema& ds = child_schema(1 + j);
        if (d.pk_col < 0 ||
            static_cast<size_t>(d.pk_col) >= ds.num_fields()) {
          return OutOfRange("dimension pk", d.pk_col, n.label);
        }
        if (d.fk.table < ColRef::kFact ||
            d.fk.table >= static_cast<int>(j)) {
          return Status::InvalidArgument(
              "dimension fk references table " + std::to_string(d.fk.table) +
              " not joined yet (node '" + n.label + "')");
        }
        const Schema& fs = ref_schema(d.fk.table);
        if (d.fk.col < 0 || static_cast<size_t>(d.fk.col) >= fs.num_fields()) {
          return OutOfRange("dimension fk", d.fk.col, n.label);
        }
        for (const Predicate& p : d.filters) {
          SMOKE_RETURN_NOT_OK(ValidatePredicate(ds, p, n.label));
        }
      }
      Schema s;
      for (const ColRef& ref : n.spja.group_by) {
        if (ref.table < ColRef::kFact ||
            ref.table >= static_cast<int>(n.spja.dims.size())) {
          return Status::InvalidArgument(
              "group-by column references unknown table (node '" + n.label +
              "')");
        }
        const Schema& ts = ref_schema(ref.table);
        if (ref.col < 0 || static_cast<size_t>(ref.col) >= ts.num_fields()) {
          return OutOfRange("group-by", ref.col, n.label);
        }
        std::string name = ts.field(static_cast<size_t>(ref.col)).name;
        if (s.IndexOf(name) >= 0) name += "_2";
        s.AddField(std::move(name), ts.field(static_cast<size_t>(ref.col)).type);
      }
      for (const AggSpec& a : n.spja.aggs) {
        if (a.src < 0 || a.src > static_cast<int>(n.spja.dims.size())) {
          return Status::InvalidArgument(
              "aggregate source table out of range (node '" + n.label + "')");
        }
        const Schema& ts =
            a.src == 0 ? fact : child_schema(static_cast<size_t>(a.src));
        SMOKE_RETURN_NOT_OK(ValidateScalarExpr(ts, a.expr, n.label));
        Field f = AggOutputField(a);
        s.AddField(f.name, f.type);
      }
      *out = std::move(s);
      return Status::OK();
    }
    case PlanOpKind::kTrace: {
      // Endpoint: the final fused hop's endpoint if any; else the named
      // endpoint for chained hops; else the child's output.
      Schema s;
      if (!n.trace.fused_hops.empty()) {
        s = n.trace.fused_hops.back().endpoint->schema();
      } else if (n.trace.seeds_from_child) {
        s = n.trace.endpoint->schema();
      } else {
        s = child_schema(0);
      }
      for (const Predicate& p : n.trace.filters) {
        SMOKE_RETURN_NOT_OK(ValidatePredicate(s, p, n.label));
      }
      s.AddField(kTraceRidColumn, DataType::kInt64);
      *out = std::move(s);
      return Status::OK();
    }
    case PlanOpKind::kDerive: {
      const Schema& in = child_schema(0);
      Schema s = in;
      for (const GroupExpr& g : n.derives) {
        SMOKE_RETURN_NOT_OK(ValidateGroupExpr(in, g, n.label));
        s.AddField(g.name, DataType::kInt64);
      }
      *out = std::move(s);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown plan node kind");
}

}  // namespace

Status ValidatePredicate(const Schema& schema, const Predicate& p,
                         const std::string& node_label) {
  if (p.col < 0 || static_cast<size_t>(p.col) >= schema.num_fields()) {
    return OutOfRange("predicate", p.col, node_label);
  }
  if (schema.field(static_cast<size_t>(p.col)).type != p.type) {
    return Status::InvalidArgument(
        "predicate on column " + std::to_string(p.col) +
        " has type " + DataTypeName(p.type) + " but the column is " +
        DataTypeName(schema.field(static_cast<size_t>(p.col)).type) +
        " (node '" + node_label + "')");
  }
  if (p.rhs_col >= 0) {
    if (static_cast<size_t>(p.rhs_col) >= schema.num_fields()) {
      return OutOfRange("predicate rhs", p.rhs_col, node_label);
    }
    if (schema.field(static_cast<size_t>(p.rhs_col)).type != p.type) {
      return Status::InvalidArgument(
          "predicate rhs column " + std::to_string(p.rhs_col) +
          " type mismatch (node '" + node_label + "')");
    }
  }
  return Status::OK();
}

Status InferNodeSchemas(const std::vector<PlanNode>& nodes, int root,
                        std::vector<Schema>* out) {
  out->assign(nodes.size(), Schema{});
  if (nodes.empty()) return Status::OK();
  Inference inf(nodes, *out);
  return inf.Infer(root);
}

Status InferPlanSchemas(const LogicalPlan& plan, std::vector<Schema>* out) {
  std::vector<PlanNode> nodes;
  nodes.reserve(plan.num_nodes());
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    nodes.push_back(plan.node(static_cast<int>(i)));
  }
  return InferNodeSchemas(nodes, plan.root(), out);
}

}  // namespace smoke
