#include "optimizer/cost.h"

#include <algorithm>
#include <cmath>

#include "query/lazy.h"

namespace smoke {

namespace {

/// Encoded posting lists decode on probe; bias their estimate a little so a
/// same-size raw index wins ties.
constexpr double kDecodePenalty = 1.25;

std::string FmtCost(double c) {
  return "~" + std::to_string(static_cast<long long>(c)) + " rids";
}

void AppendCandidate(std::string* s, const char* name, const StrategyCost& c,
                     bool chosen) {
  if (!s->empty()) *s += "; ";
  *s += name;
  if (!c.feasible) {
    *s += ": infeasible";
    if (!c.note.empty()) *s += " (" + c.note + ")";
    return;
  }
  *s += ": " + FmtCost(c.cost);
  if (!c.note.empty()) *s += " (" + c.note + ")";
  if (chosen) *s += " <- chosen";
}

}  // namespace

std::string TraceCostReport::Summary() const {
  std::string s;
  AppendCandidate(&s, "indexed", indexed, chosen == TraceStrategy::kIndexed);
  AppendCandidate(&s, "skipping", skipping,
                  chosen == TraceStrategy::kSkipping);
  AppendCandidate(&s, "lazy", lazy, chosen == TraceStrategy::kLazy);
  AppendCandidate(&s, "cube", cube, chosen == TraceStrategy::kCube);
  return s;
}

bool SkipCoversRelation(const TraceSource& src, const std::string& relation) {
  if (src.query != nullptr) return src.query->fact_name == relation;
  if (src.artifacts != nullptr && src.artifacts->lineage.num_inputs() > 0) {
    return src.artifacts->lineage.input(0).table_name == relation;
  }
  return false;
}

bool ResolveSkipCode(const TraceSource& src, const std::string& relation,
                     const std::vector<Predicate>& filters, uint32_t* code) {
  const SPJAResult* artifacts = src.artifacts;
  if (artifacts == nullptr || artifacts->skip_dict.num_codes == 0) {
    return false;
  }
  // The partitioned index itself must still be resident — budget eviction
  // drops it (keeping the dictionary), and a skipping trace over empty
  // partitions would silently answer wrong / error instead of taking the
  // lazy fallback.
  if (artifacts->skip_index.num_codes() == 0) return false;
  if (!SkipCoversRelation(src, relation)) return false;
  const std::vector<int>& cols = artifacts->applied_pushdown.skip_cols;
  if (cols.empty()) return false;
  std::string key;
  for (size_t i = 0; i < cols.size(); ++i) {
    const Predicate* found = nullptr;
    for (const Predicate& p : filters) {
      if (p.col == cols[i] && p.op == CmpOp::kEq && p.rhs_col < 0) {
        found = &p;
        break;
      }
    }
    if (found == nullptr) return false;
    if (i) key.push_back('\x1f');
    if (found->type == DataType::kString) {
      key += found->sval;
    } else if (found->type == DataType::kInt64) {
      key += std::to_string(found->ival);
    } else {
      return false;  // float partition keys are not dictionary-stable
    }
  }
  uint32_t c = artifacts->skip_dict.CodeForString(key);
  if (c == UINT32_MAX) return false;
  *code = c;
  return true;
}

bool LazyFeasible(const TraceSource& src, const std::string& relation,
                  const std::vector<rid_t>& seeds) {
  if (src.query == nullptr || src.output == nullptr) return false;
  if (seeds.size() != 1 || seeds[0] >= src.output->num_rows()) return false;
  if (src.query->fact_name != relation) return false;
  return LazyRewriteAvailable(*src.query);
}

namespace {

/// Prices a probe of `index` with `seeds`. Raw 1:N indexes are priced
/// exactly (list sizes are O(1)); encoded forms use the average posting
/// length with a decode penalty.
StrategyCost CostIndexProbe(const LineageIndex& index,
                            const std::vector<rid_t>& seeds,
                            const TraceSourceStats& stats) {
  StrategyCost c;
  c.feasible = true;
  const size_t n = index.size();
  switch (index.kind()) {
    case LineageIndex::Kind::kIndex: {
      size_t edges = 0;
      const RidVec* probed = nullptr;
      for (rid_t s : seeds) {
        if (s >= n) continue;
        const RidVec& l = index.index().list(s);
        edges += l.size();
        if (probed == nullptr && l.size() > 0) probed = &l;
      }
      c.cost = static_cast<double>(edges);
      c.note = "raw postings, exact";
      if (probed != nullptr) {
        RidSetStats rs = RidSetStats::Of(probed->data(), probed->size());
        c.note += ", first list " + std::to_string(rs.count) + " rids/" +
                  std::to_string(rs.runs) + " runs";
      }
      break;
    }
    case LineageIndex::Kind::kArray:
      c.cost = static_cast<double>(seeds.size());
      c.note = "1:1 array";
      break;
    case LineageIndex::Kind::kEncodedArray:
      c.cost = static_cast<double>(seeds.size()) * kDecodePenalty;
      c.note = "encoded 1:1";
      break;
    case LineageIndex::Kind::kEncodedIndex: {
      const double avg =
          n == 0 ? 0.0
                 : static_cast<double>(index.TotalEdges()) /
                       static_cast<double>(n);
      c.cost = static_cast<double>(seeds.size()) * avg * kDecodePenalty;
      c.note = "encoded postings, avg " +
               std::to_string(static_cast<long long>(avg)) + " rids/list";
      break;
    }
    case LineageIndex::Kind::kNone:
      c.feasible = false;
      c.note = "no backward index";
      break;
  }
  if (c.feasible && stats.valid) {
    c.note += ", store " + std::string(LineageCodecName(stats.codec)) + "/" +
              std::to_string(stats.store_bytes) + "B";
  }
  return c;
}

}  // namespace

TraceCostReport CostTraceStrategies(const TraceSource& src,
                                    const std::string& relation,
                                    const std::vector<rid_t>& seeds,
                                    const std::vector<Predicate>& filters) {
  TraceCostReport r;

  // ---- indexed: probe the captured backward index ----
  if (src.lineage == nullptr) {
    r.indexed.note = "no lineage";
  } else if (src.lineage->evicted()) {
    r.indexed.note = "index evicted";
  } else {
    int idx = src.lineage->FindInput(relation);
    if (idx < 0) {
      r.indexed.note = "relation not in lineage";
    } else {
      r.indexed = CostIndexProbe(
          src.lineage->input(static_cast<size_t>(idx)).backward, seeds,
          src.stats);
    }
  }

  // ---- skipping: scan one partition per seed ----
  if (ResolveSkipCode(src, relation, filters, &r.skip_code)) {
    const PartitionedRidIndex& pidx = src.artifacts->skip_index;
    const double parts = static_cast<double>(pidx.num_outputs()) *
                         static_cast<double>(pidx.num_codes());
    const double avg =
        parts == 0 ? 0.0 : static_cast<double>(pidx.TotalEdges()) / parts;
    r.skipping.feasible = true;
    r.skipping.cost = static_cast<double>(seeds.size()) * avg;
    r.skipping.note =
        std::to_string(pidx.num_codes()) + " partitions/output, code " +
        std::to_string(r.skip_code);
  } else {
    r.skipping.note = "no resident covering partition index / unpinned keys";
  }

  // ---- lazy: full rescan of the fact relation with rewritten predicates.
  // Transparent only for evicted sources: a pruned or push-down-replaced
  // index restricts lineage on purpose and must error, not silently rescan;
  // and the lazy plan's output shape differs (no rid column), so it never
  // competes on cost with a live index.
  const bool evicted = src.lineage != nullptr && src.lineage->evicted();
  if (evicted && LazyFeasible(src, relation, seeds)) {
    r.lazy.feasible = true;
    r.lazy.cost = static_cast<double>(src.query->fact->num_rows());
    r.lazy.note = "full fact rescan";
  } else {
    r.lazy.note = evicted ? "lazy rewrite unavailable" : "index not evicted";
  }

  // ---- cube: lookup of materialized sub-aggregates (reported, never
  // auto-chosen: cube lineage is not chainable) ----
  if (src.artifacts != nullptr && src.artifacts->cube.enabled() &&
      seeds.size() == 1 && filters.empty()) {
    r.cube.feasible = true;
    r.cube.cost = 1;
    r.cube.note = "opt-in only";
  } else {
    r.cube.note = "no cube push-down artifacts";
  }

  // ---- choose: cheapest transparent candidate; ties prefer skipping (it
  // touches the same rids with better locality), then indexed ----
  if (r.skipping.feasible && r.indexed.feasible) {
    r.chosen = r.skipping.cost <= r.indexed.cost ? TraceStrategy::kSkipping
                                                 : TraceStrategy::kIndexed;
  } else if (r.skipping.feasible) {
    r.chosen = TraceStrategy::kSkipping;
  } else if (r.indexed.feasible) {
    r.chosen = TraceStrategy::kIndexed;
  } else if (r.lazy.feasible) {
    r.chosen = TraceStrategy::kLazy;
  } else {
    // Nothing feasible: resolve to indexed so execution reports the real
    // error instead of the optimizer guessing.
    r.chosen = TraceStrategy::kIndexed;
  }
  return r;
}

ShardTraceCostReport CostShardTrace(size_t seed_count, size_t num_shards,
                                    size_t output_rows) {
  ShardTraceCostReport r;
  if (num_shards == 0) {
    r.composed.feasible = true;
    r.composed.note = "no shard state";
    return r;
  }
  const double n = static_cast<double>(num_shards);
  // Distinct seeds cannot exceed the output cardinality.
  const double seeds = std::min(static_cast<double>(seed_count),
                                std::max(1.0, static_cast<double>(output_rows)));
  // With uniform shard placement the expected distinct shards touched by
  // `seeds` region rows is the balls-into-bins bound.
  r.expected_shards = n * (1.0 - std::pow(1.0 - 1.0 / n, seeds));
  // Both candidates probe one posting list per seed; fan-out adds a second
  // (per-shard) probe per seed plus a fixed touch cost per visited shard,
  // but each probe runs against a shard-local index ~1/n the size. The
  // constants mirror CostTraceStrategies' rid-touch units.
  constexpr double kShardTouch = 4.0;
  r.fan_out.feasible = true;
  r.fan_out.cost = 2.0 * seeds + kShardTouch * r.expected_shards;
  r.fan_out.note = "expected shards " + std::to_string(r.expected_shards) +
                   " of " + std::to_string(num_shards);
  // The composed index spans all shards' lineage; a probe pays one list
  // walk per seed against full-fan-out-sized data.
  r.composed.feasible = true;
  r.composed.cost = seeds + kShardTouch * n;
  r.composed.note = "single composed index probe, full-size data";
  r.use_fan_out = r.fan_out.cost <= r.composed.cost;
  return r;
}

}  // namespace smoke
