#include "optimizer/optimizer.h"

#include <algorithm>

namespace smoke {
namespace optimizer {

Status WorkPlan::FromPlan(const LogicalPlan& plan, WorkPlan* out) {
  out->nodes.clear();
  out->keys.clear();
  out->nodes.reserve(plan.num_nodes());
  out->keys.reserve(plan.num_nodes());
  for (size_t id = 0; id < plan.num_nodes(); ++id) {
    out->nodes.push_back(plan.node(static_cast<int>(id)));
    out->keys.push_back(static_cast<double>(id));
  }
  out->root = plan.root();
  return out->Refresh();
}

Status WorkPlan::Refresh() {
  size_t n = nodes.size();
  parents.assign(n, 0);
  reachable.assign(n, 0);
  if (root < 0 || static_cast<size_t>(root) >= n) {
    return Status::InvalidArgument("optimizer workspace has no root");
  }
  // Reachability + parent counts from the root. Node ids are acyclic by
  // construction (rules only rewire toward existing subtrees or freshly
  // inserted nodes whose children predate them), so a plain DFS suffices.
  std::vector<int> stack = {root};
  reachable[static_cast<size_t>(root)] = 1;
  while (!stack.empty()) {
    int id = stack.back();
    stack.pop_back();
    for (int c : nodes[static_cast<size_t>(id)].children) {
      if (c < 0 || static_cast<size_t>(c) >= n) {
        return Status::InvalidArgument(
            "node '" + nodes[static_cast<size_t>(id)].label +
            "' has invalid child id " + std::to_string(c));
      }
      ++parents[static_cast<size_t>(c)];
      if (!reachable[static_cast<size_t>(c)]) {
        reachable[static_cast<size_t>(c)] = 1;
        stack.push_back(c);
      }
    }
  }
  return InferNodeSchemas(nodes, root, &schemas);
}

int WorkPlan::Insert(PlanNode node, double lo, double hi) {
  int id = static_cast<int>(nodes.size());
  if (node.label.empty()) {
    node.label = std::string(PlanOpKindName(node.kind)) + "#opt" +
                 std::to_string(id);
  }
  nodes.push_back(std::move(node));
  keys.push_back((lo + hi) / 2.0);
  return id;
}

Status WorkPlan::Freeze(LogicalPlan* out) const {
  std::vector<int> order;
  order.reserve(nodes.size());
  for (size_t id = 0; id < nodes.size(); ++id) {
    if (reachable[id]) order.push_back(static_cast<int>(id));
  }
  // Stable topological re-numbering: fractional keys slot inserted nodes
  // between their neighbors, and the id tiebreak keeps the original nodes —
  // in particular the scans, whose relative order is the lineage-input
  // order — in their original sequence.
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    double ka = keys[static_cast<size_t>(a)];
    double kb = keys[static_cast<size_t>(b)];
    if (ka != kb) return ka < kb;
    return a < b;
  });
  std::vector<int> remap(nodes.size(), -1);
  PlanBuilder builder;
  for (int id : order) {
    PlanNode copy = nodes[static_cast<size_t>(id)];
    for (int& c : copy.children) {
      if (c < 0 || static_cast<size_t>(c) >= nodes.size() ||
          remap[static_cast<size_t>(c)] < 0) {
        return Status::InvalidArgument("optimizer produced a non-topological plan at "
                                "node '" + copy.label + "'");
      }
      c = remap[static_cast<size_t>(c)];
    }
    remap[static_cast<size_t>(id)] = builder.AddNode(std::move(copy));
  }
  if (remap[static_cast<size_t>(root)] < 0) {
    return Status::InvalidArgument("optimizer lost the plan root");
  }
  return builder.Build(remap[static_cast<size_t>(root)], out);
}

}  // namespace optimizer

Status OptimizePlan(const LogicalPlan& plan, LogicalPlan* out,
                    PlanExplain* explain, const OptimizerOptions& options) {
  optimizer::WorkPlan wp;
  // Refresh doubles as plan validation: malformed plans (bad column refs,
  // type mismatches, unbindable expressions) are rejected here with a clear
  // Status instead of failing mid-execution.
  Status st = optimizer::WorkPlan::FromPlan(plan, &wp);
  if (!st.ok()) return st;

  std::vector<std::unique_ptr<optimizer::Rule>> rules =
      optimizer::MakeRules(options);
  int applications = 0;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool changed = false;
    for (const std::unique_ptr<optimizer::Rule>& rule : rules) {
      // Scan bottom-up (ascending id ≈ children first) and restart after
      // every application: rewrites invalidate schemas and parent counts.
      bool applied = true;
      while (applied) {
        applied = false;
        for (size_t id = 0; id < wp.nodes.size(); ++id) {
          if (!wp.reachable[id]) continue;
          std::string detail;
          if (!rule->Apply(&wp, static_cast<int>(id), &detail)) continue;
          if (explain != nullptr) {
            explain->rules.push_back(
                {rule->name(), wp.nodes[id].label, detail});
          }
          st = wp.Refresh();
          if (!st.ok()) {
            return Status::InvalidArgument(std::string("optimizer rule '") +
                                    rule->name() + "' broke the plan: " +
                                    st.message());
          }
          applied = true;
          changed = true;
          if (++applications >= options.max_applications) {
            applied = false;
            changed = false;
          }
          break;
        }
      }
      if (applications >= options.max_applications) break;
    }
    if (!changed) break;
  }

  st = wp.Freeze(out);
  if (!st.ok()) return st;
  if (explain != nullptr) {
    explain->optimized = true;
    explain->plan_text = out->ToString();
  }
  return Status::OK();
}

}  // namespace smoke
