// The shipping rewrite rules (optimizer/optimizer.h). Every rule preserves
// results AND lineage bit-identically; the non-obvious safety arguments are
// documented on the rule that needs them.
//
// Workspace conventions:
//  - "swap" rules (select push-down through a 1:1 operator) exchange the
//    contents of parent and child in place — both ids survive, order keys
//    stay put, and keys[child] < keys[parent] keeps the order topological.
//  - "content-copy" rules (merge, fusion, elision) overwrite the parent
//    with child-derived content and orphan the child; they require
//    SingleParent(child) (a shared child would otherwise execute twice) and
//    inherit the child's order key so Freeze() keeps the node — in
//    particular a scan, whose position is the lineage-input order — in the
//    child's original position.
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "optimizer/optimizer.h"

namespace smoke {
namespace optimizer {
namespace {

// ---------------------------------------------------------------------------
// fold_constants
// ---------------------------------------------------------------------------

/// Folds constant subtrees of `e` bottom-up. Uses the same plain double
/// arithmetic CompiledExpr::Eval runs per row, so the folded constant is the
/// bit-identical IEEE value the unfolded expression would produce.
void FoldExpr(ScalarExpr* e, int* folds) {
  if (e->left) FoldExpr(e->left.get(), folds);
  if (e->right) FoldExpr(e->right.get(), folds);
  const bool lc = e->left && e->left->op == ScalarExpr::Op::kConst;
  const bool rc = e->right && e->right->op == ScalarExpr::Op::kConst;
  double v = 0;
  switch (e->op) {
    case ScalarExpr::Op::kAdd:
      if (!lc || !rc) return;
      v = e->left->constant + e->right->constant;
      break;
    case ScalarExpr::Op::kSub:
      if (!lc || !rc) return;
      v = e->left->constant - e->right->constant;
      break;
    case ScalarExpr::Op::kMul:
      if (!lc || !rc) return;
      v = e->left->constant * e->right->constant;
      break;
    case ScalarExpr::Op::kDiv:
      if (!lc || !rc) return;
      v = e->left->constant / e->right->constant;
      break;
    case ScalarExpr::Op::kSqrt:
      if (!lc) return;
      v = std::sqrt(e->left->constant);
      break;
    default:
      return;
  }
  *e = ScalarExpr::Const(v);
  ++*folds;
}

class FoldConstantsRule : public Rule {
 public:
  const char* name() const override { return "fold_constants"; }

  bool Apply(WorkPlan* wp, int id, std::string* detail) const override {
    PlanNode& n = wp->nodes[static_cast<size_t>(id)];
    int folds = 0;
    if (n.kind == PlanOpKind::kGroupBy) {
      for (AggSpec& a : n.group_by.aggs) FoldExpr(&a.expr, &folds);
    } else if (n.kind == PlanOpKind::kSpjaBlock) {
      for (AggSpec& a : n.spja.aggs) FoldExpr(&a.expr, &folds);
      for (AggSpec& a : n.pushdown.cube_aggs) FoldExpr(&a.expr, &folds);
    } else {
      return false;
    }
    if (folds == 0) return false;
    *detail = "folded " + std::to_string(folds) + " constant subexpression(s)";
    return true;
  }
};

// ---------------------------------------------------------------------------
// Select push-down family
// ---------------------------------------------------------------------------

/// Shared guard for rules that rewrite a Select over its single child.
bool SelectOver(const WorkPlan& wp, int id, PlanOpKind child_kind,
                bool need_preds = true) {
  const PlanNode& n = wp.node(id);
  if (n.kind != PlanOpKind::kSelect) return false;
  if (need_preds && n.predicates.empty()) return false;
  int cid = n.children[0];
  return wp.node(cid).kind == child_kind && wp.SingleParent(cid);
}

/// Select(Select(x, P1), P2) -> Select(x, P1 ++ P2). PredicateList is a
/// conjunction, so the passing rid set — and therefore the select fragment —
/// is unchanged.
class MergeSelectsRule : public Rule {
 public:
  const char* name() const override { return "merge_selects"; }

  bool Apply(WorkPlan* wp, int id, std::string* detail) const override {
    if (!SelectOver(*wp, id, PlanOpKind::kSelect, /*need_preds=*/false)) {
      return false;
    }
    const int cid = wp->node(id).children[0];
    const size_t added = wp->node(id).predicates.size();
    PlanNode merged = wp->nodes[static_cast<size_t>(cid)];
    merged.predicates.insert(merged.predicates.end(),
                             wp->node(id).predicates.begin(),
                             wp->node(id).predicates.end());
    wp->nodes[static_cast<size_t>(id)] = std::move(merged);
    wp->keys[static_cast<size_t>(id)] = wp->keys[static_cast<size_t>(cid)];
    *detail = "merged " + std::to_string(added) +
              " predicate(s) into the child select";
    return true;
  }
};

/// Select(Project(x)) -> Project(Select(x)), remapping predicate columns
/// through the projection. The projection is a pure 1:1 pipeline (identity
/// fragment, passed through by the composer), so the select fragment —
/// computed over the same rid space either way — composes identically.
class PushSelectThroughProjectRule : public Rule {
 public:
  const char* name() const override { return "push_select_through_project"; }

  bool Apply(WorkPlan* wp, int id, std::string* detail) const override {
    if (!SelectOver(*wp, id, PlanOpKind::kProject)) return false;
    const int cid = wp->node(id).children[0];
    PlanNode sel = wp->nodes[static_cast<size_t>(id)];
    PlanNode proj = wp->nodes[static_cast<size_t>(cid)];
    for (Predicate& p : sel.predicates) {
      p.col = proj.columns[static_cast<size_t>(p.col)];
      if (p.rhs_col >= 0) {
        p.rhs_col = proj.columns[static_cast<size_t>(p.rhs_col)];
      }
    }
    sel.children = proj.children;
    proj.children = {cid};
    *detail = "pushed " + std::to_string(sel.predicates.size()) +
              " predicate(s) below '" + proj.label + "'";
    wp->nodes[static_cast<size_t>(cid)] = std::move(sel);
    wp->nodes[static_cast<size_t>(id)] = std::move(proj);
    return true;
  }
};

/// Select(Derive(x)) -> Derive(Select(x)) when every predicate reads only
/// the pass-through columns (derived keys land after them). Derive is a 1:1
/// identity-fragment pipeline like Project.
class PushSelectThroughDeriveRule : public Rule {
 public:
  const char* name() const override { return "push_select_through_derive"; }

  bool Apply(WorkPlan* wp, int id, std::string* detail) const override {
    if (!SelectOver(*wp, id, PlanOpKind::kDerive)) return false;
    const int cid = wp->node(id).children[0];
    const int base_width = static_cast<int>(
        wp->schema(wp->node(cid).children[0]).num_fields());
    for (const Predicate& p : wp->node(id).predicates) {
      if (p.col >= base_width || p.rhs_col >= base_width) return false;
    }
    PlanNode sel = wp->nodes[static_cast<size_t>(id)];
    PlanNode der = wp->nodes[static_cast<size_t>(cid)];
    sel.children = der.children;
    der.children = {cid};
    *detail = "pushed " + std::to_string(sel.predicates.size()) +
              " predicate(s) below '" + der.label + "'";
    wp->nodes[static_cast<size_t>(cid)] = std::move(sel);
    wp->nodes[static_cast<size_t>(id)] = std::move(der);
    return true;
  }
};

/// Select(SetOp(a, b)) -> SetOp(Select(a), Select(b)).
///
/// Safe for all five kinds: non-bag-union outputs are the set_cols
/// projection, so predicates see only the comparison columns — every row of
/// a value class passes or fails together, which keeps the output rows, the
/// per-class contributor lists (backward lineage), and the witness pairing
/// (bag intersect) unchanged. Bag union is row-wise 1:1, so filtering the
/// concatenation and concatenating the filtered inputs are the same thing.
class PushSelectThroughSetOpRule : public Rule {
 public:
  const char* name() const override { return "push_select_through_set_op"; }

  bool Apply(WorkPlan* wp, int id, std::string* detail) const override {
    if (!SelectOver(*wp, id, PlanOpKind::kSetOp)) return false;
    const int cid = wp->node(id).children[0];
    const PlanNode so = wp->nodes[static_cast<size_t>(cid)];  // copy
    const int a = so.children[0];
    const int b = so.children[1];

    std::vector<Predicate> preds = wp->node(id).predicates;
    if (so.set_op != SetOpKind::kBagUnion) {
      for (Predicate& p : preds) {
        p.col = so.set_cols[static_cast<size_t>(p.col)];
        if (p.rhs_col >= 0) {
          p.rhs_col = so.set_cols[static_cast<size_t>(p.rhs_col)];
        }
      }
    }

    const double key_a = wp->keys[static_cast<size_t>(a)];
    const double key_b = wp->keys[static_cast<size_t>(b)];
    const double key_so = wp->keys[static_cast<size_t>(cid)];

    PlanNode sel_a;
    sel_a.kind = PlanOpKind::kSelect;
    sel_a.children = {a};
    sel_a.predicates = preds;
    const int ida = wp->Insert(std::move(sel_a), key_a, key_so);

    PlanNode sel_b;
    sel_b.kind = PlanOpKind::kSelect;
    sel_b.children = {b};
    sel_b.predicates = std::move(preds);
    const int idb = wp->Insert(std::move(sel_b), key_b, key_so);

    PlanNode top = so;
    top.children = {ida, idb};
    *detail = "pushed " + std::to_string(wp->node(id).predicates.size()) +
              " predicate(s) into both set-op inputs";
    wp->nodes[static_cast<size_t>(id)] = std::move(top);
    wp->keys[static_cast<size_t>(id)] = key_so;
    return true;
  }
};

/// Select(Trace(x)) -> Trace(x) with the predicates appended to the trace's
/// filters. The trace evaluates them per traced rid against the endpoint
/// *before* materialization and composes the select-equivalent fragment
/// through the same lineage/compose calls the literal Select would — the
/// rows never copied are exactly the rows the Select would drop.
class PushSelectIntoTraceRule : public Rule {
 public:
  const char* name() const override { return "push_select_into_trace"; }

  bool Apply(WorkPlan* wp, int id, std::string* detail) const override {
    if (!SelectOver(*wp, id, PlanOpKind::kTrace)) return false;
    const int cid = wp->node(id).children[0];
    // Trace output = endpoint columns ++ kTraceRidColumn; filters may read
    // only the endpoint columns.
    const int endpoint_width =
        static_cast<int>(wp->schema(cid).num_fields()) - 1;
    for (const Predicate& p : wp->node(id).predicates) {
      if (p.col >= endpoint_width || p.rhs_col >= endpoint_width) return false;
    }
    const size_t added = wp->node(id).predicates.size();
    PlanNode tr = wp->nodes[static_cast<size_t>(cid)];
    tr.trace.filters.insert(tr.trace.filters.end(),
                            wp->node(id).predicates.begin(),
                            wp->node(id).predicates.end());
    wp->nodes[static_cast<size_t>(id)] = std::move(tr);
    wp->keys[static_cast<size_t>(id)] = wp->keys[static_cast<size_t>(cid)];
    *detail = "pushed " + std::to_string(added) +
              " predicate(s) into the trace index scan";
    return true;
  }
};

// ---------------------------------------------------------------------------
// fuse_trace_hops
// ---------------------------------------------------------------------------

/// Trace_outer(Trace_inner(x)) -> Trace_inner carrying the outer hop as a
/// TraceHopSpec. The fused operator runs the identical per-hop index probes
/// and composes the per-hop fragments through the same ComposeBackward /
/// ComposeForward calls the executor would make for the literal chain — it
/// only skips materializing the intermediate endpoints. Requires the inner
/// trace to have no filters yet: fused filters run after all hops, so
/// hopping after an inner filter must not be folded past it.
class FuseTraceHopsRule : public Rule {
 public:
  const char* name() const override { return "fuse_trace_hops"; }

  bool Apply(WorkPlan* wp, int id, std::string* detail) const override {
    const PlanNode& n = wp->node(id);
    if (n.kind != PlanOpKind::kTrace || !n.trace.seeds_from_child) {
      return false;
    }
    const int cid = n.children[0];
    const PlanNode& child = wp->node(cid);
    if (child.kind != PlanOpKind::kTrace || !wp->SingleParent(cid)) {
      return false;
    }
    if (!child.trace.filters.empty()) return false;

    PlanNode fused = wp->nodes[static_cast<size_t>(cid)];
    TraceHopSpec hop;
    hop.lineage = n.trace.lineage;
    hop.relation = n.trace.relation;
    hop.direction = n.trace.direction;
    hop.endpoint = n.trace.endpoint;
    hop.dedup = n.trace.dedup;
    fused.trace.fused_hops.push_back(std::move(hop));
    fused.trace.fused_hops.insert(fused.trace.fused_hops.end(),
                                  n.trace.fused_hops.begin(),
                                  n.trace.fused_hops.end());
    fused.trace.filters = n.trace.filters;
    fused.label = n.label;
    *detail = std::string("fused ") +
              (n.trace.direction == TraceDirection::kForward ? "forward"
                                                             : "backward") +
              " hop over '" + n.trace.relation + "' into '" + child.label +
              "'";
    wp->nodes[static_cast<size_t>(id)] = std::move(fused);
    wp->keys[static_cast<size_t>(id)] = wp->keys[static_cast<size_t>(cid)];
    return true;
  }
};

// ---------------------------------------------------------------------------
// Elision family
// ---------------------------------------------------------------------------

/// Project keeping [0, child_width) in order is a no-op with an identity
/// fragment the composer already passes through — removing it changes
/// nothing, bit for bit.
class ElideIdentityProjectRule : public Rule {
 public:
  const char* name() const override { return "elide_identity_project"; }

  bool Apply(WorkPlan* wp, int id, std::string* detail) const override {
    const PlanNode& n = wp->node(id);
    if (n.kind != PlanOpKind::kProject) return false;
    const int cid = n.children[0];
    if (!wp->SingleParent(cid)) return false;
    const Schema& child_schema = wp->schema(cid);
    if (n.columns.size() != child_schema.num_fields()) return false;
    for (size_t i = 0; i < n.columns.size(); ++i) {
      if (n.columns[i] != static_cast<int>(i)) return false;
    }
    // The plan root must stay an operator.
    if (wp->node(cid).kind == PlanOpKind::kScan && id == wp->root) {
      return false;
    }
    *detail = "removed identity projection over '" + wp->node(cid).label + "'";
    wp->nodes[static_cast<size_t>(id)] = wp->nodes[static_cast<size_t>(cid)];
    wp->keys[static_cast<size_t>(id)] = wp->keys[static_cast<size_t>(cid)];
    return true;
  }
};

/// Project(Project(x)) -> Project(x) with composed column lists (both are
/// identity-fragment pipelines).
class MergeProjectsRule : public Rule {
 public:
  const char* name() const override { return "merge_projects"; }

  bool Apply(WorkPlan* wp, int id, std::string* detail) const override {
    const PlanNode& n = wp->node(id);
    if (n.kind != PlanOpKind::kProject) return false;
    const int cid = n.children[0];
    const PlanNode& child = wp->node(cid);
    if (child.kind != PlanOpKind::kProject || !wp->SingleParent(cid)) {
      return false;
    }
    std::vector<int> composed;
    composed.reserve(n.columns.size());
    for (int c : n.columns) {
      composed.push_back(child.columns[static_cast<size_t>(c)]);
    }
    PlanNode merged = wp->nodes[static_cast<size_t>(cid)];
    merged.columns = std::move(composed);
    *detail = "merged adjacent projections";
    wp->nodes[static_cast<size_t>(id)] = std::move(merged);
    wp->keys[static_cast<size_t>(id)] = wp->keys[static_cast<size_t>(cid)];
    return true;
  }
};

/// Select with no predicates passes every row. Its fragment is an explicit
/// 1:1 identity, which is *not* flagged identity — composing through it
/// normalizes (sort+unique) raw forward lists when the select sits directly
/// under an identity accumulator. Kinds whose raw forward lists can be
/// unsorted or carry duplicates (SPJA dimension forwards, chained-trace
/// forwards) are therefore excluded on *both* sides: as the child (the
/// select normalizes the child's own fragment) and as the parent (the
/// select normalizes the accumulator the parent passes down raw). Eliding
/// there would change the emitted bits (not the semantics).
class ElideEmptySelectRule : public Rule {
 public:
  const char* name() const override { return "elide_empty_select"; }

  bool Apply(WorkPlan* wp, int id, std::string* detail) const override {
    const PlanNode& n = wp->node(id);
    if (n.kind != PlanOpKind::kSelect || !n.predicates.empty()) return false;
    const int cid = n.children[0];
    if (!wp->SingleParent(cid)) return false;
    const PlanOpKind ck = wp->node(cid).kind;
    if (ck == PlanOpKind::kSpjaBlock || ck == PlanOpKind::kTrace) {
      return false;
    }
    for (size_t p = 0; p < wp->nodes.size(); ++p) {
      if (!wp->reachable[p]) continue;
      const PlanNode& parent = wp->nodes[p];
      if (parent.kind != PlanOpKind::kSpjaBlock &&
          parent.kind != PlanOpKind::kTrace) {
        continue;
      }
      for (int c : parent.children) {
        if (c == id) return false;
      }
    }
    if (ck == PlanOpKind::kScan && id == wp->root) return false;
    *detail = "removed predicate-free select over '" + wp->node(cid).label +
              "'";
    wp->nodes[static_cast<size_t>(id)] = wp->nodes[static_cast<size_t>(cid)];
    wp->keys[static_cast<size_t>(id)] = wp->keys[static_cast<size_t>(cid)];
    return true;
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> MakeRules(const OptimizerOptions& options) {
  std::vector<std::unique_ptr<Rule>> rules;
  if (options.constant_folding) {
    rules.push_back(std::make_unique<FoldConstantsRule>());
  }
  if (options.predicate_pushdown) {
    rules.push_back(std::make_unique<MergeSelectsRule>());
    rules.push_back(std::make_unique<PushSelectThroughProjectRule>());
    rules.push_back(std::make_unique<PushSelectThroughDeriveRule>());
    rules.push_back(std::make_unique<PushSelectThroughSetOpRule>());
    rules.push_back(std::make_unique<PushSelectIntoTraceRule>());
  }
  if (options.trace_fusion) {
    rules.push_back(std::make_unique<FuseTraceHopsRule>());
  }
  if (options.elision) {
    rules.push_back(std::make_unique<ElideIdentityProjectRule>());
    rules.push_back(std::make_unique<MergeProjectsRule>());
    rules.push_back(std::make_unique<ElideEmptySelectRule>());
  }
  return rules;
}

}  // namespace optimizer
}  // namespace smoke
