#include "serve/admission.h"

#include <algorithm>

namespace smoke {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

TieredScheduler::TieredScheduler(int num_threads)
    : num_threads_(num_threads < 0 ? 0 : num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(static_cast<size_t>(w)); });
  }
}

TieredScheduler::~TieredScheduler() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

std::shared_ptr<TieredScheduler::Job> TieredScheduler::FrontRunnableLocked(
    std::deque<std::shared_ptr<Job>>* queue) {
  // Fully claimed jobs at the front are done admitting; drop them — their
  // in-flight tasks track completion through the shared_ptr.
  while (!queue->empty() &&
         (*queue->begin())->next_task >= (*queue->begin())->num_tasks) {
    queue->pop_front();
  }
  return queue->empty() ? nullptr : queue->front();
}

size_t TieredScheduler::ClaimTaskLocked(Job* job) {
  const size_t task = job->next_task++;
  if (!job->started) {
    job->started = true;
    ClassStats& cs = stats_[static_cast<size_t>(job->cls)];
    const double wait = MsSince(job->submit);
    cs.total_wait_ms += wait;
    cs.max_wait_ms = std::max(cs.max_wait_ms, wait);
  }
  return task;
}

void TieredScheduler::FinishTask(const std::shared_ptr<Job>& job) {
  MutexLock lock(mu_);
  if (--job->pending > 0) return;
  ClassStats& cs = stats_[static_cast<size_t>(job->cls)];
  cs.jobs++;
  cs.tasks += job->num_tasks;
  cs.total_span_ms += MsSince(job->submit);
  cs.queue_depth--;
  auto& q = queues_[static_cast<size_t>(job->cls)];
  q.erase(std::remove(q.begin(), q.end(), job), q.end());
  done_cv_.NotifyAll();
}

bool TieredScheduler::RunOneTask(size_t worker) {
  std::shared_ptr<Job> job;
  size_t task;
  {
    MutexLock lock(mu_);
    job = FrontRunnableLocked(&queues_[0]);  // interactive preempts...
    if (job == nullptr) job = FrontRunnableLocked(&queues_[1]);  // ...batch
    if (job == nullptr) return false;
    task = ClaimTaskLocked(job.get());
  }
  (*job->fn)(task, worker);
  FinishTask(job);
  return true;
}

void TieredScheduler::ParallelFor(
    TaskClass c, size_t num_tasks,
    const std::function<void(size_t, size_t)>& fn) {
  if (num_tasks == 0) return;
  auto job = std::make_shared<Job>();
  job->cls = c;
  job->fn = &fn;
  job->num_tasks = num_tasks;
  job->pending = num_tasks;
  job->submit = std::chrono::steady_clock::now();
  {
    MutexLock lock(mu_);
    ClassStats& cs = stats_[static_cast<size_t>(c)];
    cs.queue_depth++;
    cs.max_queue_depth = std::max(cs.max_queue_depth, cs.queue_depth);
    queues_[static_cast<size_t>(c)].push_back(job);
  }
  if (num_threads_ > 0) work_cv_.NotifyAll();

  // The submitter drives its own job (caller slot = num_threads_): with a
  // saturated or empty pool the job still completes, and a brush's own
  // thread never idles behind batch work.
  const size_t caller = static_cast<size_t>(num_threads_);
  for (;;) {
    size_t task;
    {
      MutexLock lock(mu_);
      if (job->next_task >= job->num_tasks) break;
      task = ClaimTaskLocked(job.get());
    }
    fn(task, caller);
    FinishTask(job);
  }

  MutexLock lock(mu_);
  done_cv_.Wait(mu_, [&] { return job->pending == 0; });
}

void TieredScheduler::Run(TaskClass c, const std::function<void()>& fn) {
  ParallelFor(c, 1, [&fn](size_t, size_t) { fn(); });
}

void TieredScheduler::WorkerLoop(size_t worker) {
  for (;;) {
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_, [this] {
        mu_.AssertHeld();
        if (shutdown_) return true;
        for (auto& q : queues_) {
          if (FrontRunnableLocked(&q) != nullptr) return true;
        }
        return false;
      });
      if (shutdown_) return;
    }
    while (RunOneTask(worker)) {
    }
  }
}

TieredScheduler::Stats TieredScheduler::GetStats() const {
  MutexLock lock(mu_);
  Stats s;
  s.interactive = stats_[static_cast<size_t>(TaskClass::kInteractive)];
  s.batch = stats_[static_cast<size_t>(TaskClass::kBatch)];
  return s;
}

}  // namespace smoke
