// Per-client session handles over the serving core (serve/serve_core.h).
//
// A ServeSession is the unit of isolation in the serving layer: it runs
// brushes and traces at interactive admission priority against whatever
// snapshot is current at call time, keeps named retained-trace handles —
// each pinning the snapshot version it was traced against, so a handle
// stays valid across any number of ReplaceTable calls — and enforces a
// per-session lineage-budget slice through its own LineageMemoryTracker:
// one session retaining heavy traces evicts its *own* coldest handles, not
// its neighbors'. Closing the session drops every handle, releasing the
// snapshot pins (which may trigger epoch reclamation of retired versions)
// and returning the budget accounting to baseline.
//
// Thread safety: a session handle may be shared between threads (all
// methods lock internally), but the intended shape is one session per
// client thread, many sessions per core.
#ifndef SMOKE_SERVE_SESSION_H_
#define SMOKE_SERVE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/plan_crossfilter.h"
#include "common/mutex.h"
#include "common/status.h"
#include "serve/serve_core.h"

namespace smoke {

/// \brief One client's handle into a ServeCore. Created by
/// ServeCore::OpenSession; valid until CloseSession / core destruction.
class ServeSession {
 public:
  SMOKE_DISALLOW_COPY_AND_ASSIGN(ServeSession);

  const std::string& id() const { return id_; }

  /// One linked brush, all views, one snapshot. `snapshot_version` names
  /// the version every entry of `views` was computed against — concurrent
  /// writers never bleed into a brush.
  struct BrushResult {
    uint64_t snapshot_version = 0;
    std::map<std::string, LinkedBrush> views;  ///< every view except `view`
  };

  /// Brushes output row `out_rid` of `view` into every other view of the
  /// current snapshot (Trace∘Trace through the core's shared relation).
  /// Runs as one interactive-class job on the core's admission pool, so it
  /// preempts in-flight batch captures at morsel granularity.
  Status Brush(const std::string& view, rid_t out_rid, BrushResult* out)
      SMOKE_EXCLUDES(mu_);

  /// Traces `out_rids` of `view` backward to the shared relation on the
  /// current snapshot and retains the result under `handle`. The handle
  /// pins its snapshot version (a retired version stays alive while any
  /// handle references it) and charges the session's budget slice with the
  /// trace's lineage + row bytes; the coldest other handles are evicted if
  /// the slice overflows. Fails with InvalidArgument when the trace alone
  /// exceeds the slice.
  Status RetainBackwardTrace(const std::string& handle,
                             const std::string& view,
                             const std::vector<rid_t>& out_rids)
      SMOKE_EXCLUDES(mu_);

  /// Looks up a retained trace (bumps its LRU tick). The pointer stays
  /// valid until the handle is dropped, evicted by the budget, or the
  /// session closes. `snapshot_version`, when non-null, receives the
  /// version the trace was computed against.
  Status GetRetainedTrace(const std::string& handle, const TraceResult** out,
                          uint64_t* snapshot_version = nullptr) const
      SMOKE_EXCLUDES(mu_);

  /// Drops one retained trace, releasing its snapshot pin and accounting.
  Status DropRetainedTrace(const std::string& handle) SMOKE_EXCLUDES(mu_);

  std::vector<std::string> RetainedTraceNames() const SMOKE_EXCLUDES(mu_);

  /// Retained-trace accounting for this session's slice (budget_bytes = the
  /// slice; 0 = unlimited).
  LineageStoreStats LineageStats() const SMOKE_EXCLUDES(mu_);
  size_t retained_bytes() const SMOKE_EXCLUDES(mu_);
  size_t budget_bytes() const { return budget_; }

  struct SessionStats {
    uint64_t brushes = 0;
    double total_brush_ms = 0;
    double max_brush_ms = 0;
    size_t retained_traces = 0;
    size_t retained_bytes = 0;
    uint64_t traces_evicted = 0;       ///< budget-slice evictions
    uint64_t last_snapshot_version = 0;  ///< version of the latest brush
    bool closed = false;
  };
  SessionStats GetStats() const SMOKE_EXCLUDES(mu_);

  /// Drops every retained trace (releasing pins and accounting) and marks
  /// the session closed; further Brush/Retain calls fail. Idempotent.
  /// ServeCore::CloseSession calls this and unregisters the handle.
  void Close() SMOKE_EXCLUDES(mu_);

 private:
  friend class ServeCore;

  ServeSession(ServeCore* core, std::string id, size_t budget_bytes)
      : core_(core), id_(std::move(id)), budget_(budget_bytes) {
    tracker_.SetBudget(budget_);
  }

  struct RetainedTrace {
    TraceResult result;
    uint64_t version = 0;          ///< snapshot it was traced against
    ServeCore::SnapshotRef ref;    ///< keeps that snapshot alive
  };

  /// Evicts coldest handles (except `keep`) until the slice fits.
  void EnforceSliceLocked(const std::string& keep) SMOKE_REQUIRES(mu_);

  ServeCore* const core_;
  const std::string id_;
  const size_t budget_;  ///< slice in bytes; 0 = unlimited

  mutable Mutex mu_;
  /// mutable: GetRetainedTrace is const but bumps the LRU clock. The
  /// tracker is itself internally synchronized; mu_ additionally keeps it
  /// consistent with retained_ (evictions mutate both).
  mutable LineageMemoryTracker tracker_ SMOKE_GUARDED_BY(mu_);
  std::map<std::string, RetainedTrace> retained_ SMOKE_GUARDED_BY(mu_);
  uint64_t brushes_ SMOKE_GUARDED_BY(mu_) = 0;
  double total_brush_ms_ SMOKE_GUARDED_BY(mu_) = 0;
  double max_brush_ms_ SMOKE_GUARDED_BY(mu_) = 0;
  uint64_t traces_evicted_ SMOKE_GUARDED_BY(mu_) = 0;
  uint64_t last_snapshot_version_ SMOKE_GUARDED_BY(mu_) = 0;
  bool closed_ SMOKE_GUARDED_BY(mu_) = false;
};

}  // namespace smoke

#endif  // SMOKE_SERVE_SESSION_H_
