#include "serve/epoch.h"

#include <utility>

namespace smoke {

EpochManager::~EpochManager() {
  std::vector<Retired> drain;
  {
    MutexLock lock(mu_);
    SMOKE_CHECK(pins_.empty());  // a live Guard outliving its manager is a bug
    drain = std::move(retired_);
    retired_.clear();
  }
  for (Retired& r : drain) r.deleter();
}

void EpochManager::Guard::Release() {
  if (mgr_ == nullptr) return;
  EpochManager* mgr = mgr_;
  mgr_ = nullptr;
  mgr->Unpin(epoch_);
}

EpochManager::Guard EpochManager::Pin() {
  MutexLock lock(mu_);
  pins_[epoch_]++;
  return Guard(this, epoch_);
}

void EpochManager::Unpin(uint64_t epoch) {
  std::vector<Retired> drain;
  {
    MutexLock lock(mu_);
    auto it = pins_.find(epoch);
    SMOKE_CHECK(it != pins_.end() && it->second > 0);
    if (--it->second == 0) pins_.erase(it);
    drain = TakeReclaimableLocked();
  }
  for (Retired& r : drain) r.deleter();
}

void EpochManager::Retire(std::function<void()> deleter) {
  std::vector<Retired> drain;
  {
    MutexLock lock(mu_);
    Retired r;
    r.epoch = epoch_;
    r.deleter = std::move(deleter);
    retired_.push_back(std::move(r));
    // Advance the clock so pins taken from here on are provably after the
    // retire and can never need the retired object.
    ++epoch_;
    drain = TakeReclaimableLocked();
  }
  for (Retired& d : drain) d.deleter();
}

size_t EpochManager::Reclaim() {
  std::vector<Retired> drain;
  {
    MutexLock lock(mu_);
    drain = TakeReclaimableLocked();
  }
  for (Retired& r : drain) r.deleter();
  return drain.size();
}

std::vector<EpochManager::Retired> EpochManager::TakeReclaimableLocked() {
  // Safe horizon: everything retired strictly before the oldest live pin
  // (or everything, when nothing is pinned — only future pins exist and
  // they start at the already-advanced clock).
  const uint64_t horizon = pins_.empty() ? epoch_ + 1 : pins_.begin()->first;
  std::vector<Retired> drain;
  size_t keep = 0;
  for (Retired& r : retired_) {
    if (r.epoch < horizon) {
      drain.push_back(std::move(r));
    } else {
      retired_[keep++] = std::move(r);
    }
  }
  retired_.resize(keep);
  reclaimed_ += drain.size();
  return drain;
}

EpochManager::Stats EpochManager::GetStats() const {
  MutexLock lock(mu_);
  Stats s;
  s.epoch = epoch_;
  s.retired = retired_.size();
  s.reclaimed = reclaimed_;
  for (const auto& [e, n] : pins_) {
    (void)e;
    s.pinned += n;
  }
  return s;
}

}  // namespace smoke
