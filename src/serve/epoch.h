// Epoch-based reclamation for the serving layer (ROADMAP "Concurrent
// multi-session serving layer").
//
// Retained snapshot versions are immutable and shared by many concurrent
// readers. A writer that installs a new version cannot free the old one
// while any brush still reads it — but it also must not block waiting for
// readers (the whole point of snapshot serving). Classic epoch-based
// reclamation resolves this: readers pin the current epoch for the duration
// of an access, writers retire superseded objects under the epoch at which
// they became unreachable, and retired objects are reclaimed once every
// pinned epoch has advanced past their retire epoch (i.e. the last possible
// reader has drained).
//
// The implementation favors auditability over lock-freedom: one mutex
// guards the pin multiset and the retire list. Pins are per-snapshot-access
// (a brush) or per-retained-handle (a session trace pinning its version),
// so the critical sections are a handful of map operations amortized over
// morsel-scale work; correctness under TSan is the property this layer is
// graded on.
#ifndef SMOKE_SERVE_EPOCH_H_
#define SMOKE_SERVE_EPOCH_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"

namespace smoke {

/// \brief Pin registry + deferred-free list keyed by a global epoch clock.
class EpochManager {
 public:
  EpochManager() = default;
  /// All pins must be released before destruction; anything still retired
  /// is reclaimed here.
  ~EpochManager();
  SMOKE_DISALLOW_COPY_AND_ASSIGN(EpochManager);

  /// \brief RAII pin on one epoch. Movable; the moved-from guard is empty.
  /// Releasing the pin (destruction or Release()) may reclaim retired
  /// objects whose last possible reader just drained.
  class Guard {
   public:
    Guard() = default;
    Guard(EpochManager* mgr, uint64_t epoch) : mgr_(mgr), epoch_(epoch) {}
    ~Guard() { Release(); }
    Guard(Guard&& o) noexcept : mgr_(o.mgr_), epoch_(o.epoch_) {
      o.mgr_ = nullptr;
    }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        Release();
        mgr_ = o.mgr_;
        epoch_ = o.epoch_;
        o.mgr_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    bool pinned() const { return mgr_ != nullptr; }
    uint64_t epoch() const { return epoch_; }
    void Release();

   private:
    EpochManager* mgr_ = nullptr;
    uint64_t epoch_ = 0;
  };

  /// Pins the current epoch. The caller may then safely dereference any
  /// object published before the pin and not yet retired at pin time.
  Guard Pin() SMOKE_EXCLUDES(mu_);

  /// Registers `deleter` to run once no pin from the current or an earlier
  /// epoch remains, then advances the epoch (so later pins never extend
  /// this object's lifetime) and reclaims whatever is already safe.
  void Retire(std::function<void()> deleter) SMOKE_EXCLUDES(mu_);

  /// Runs every deleter whose retire epoch precedes all live pins. Called
  /// automatically on Retire and pin release; exposed for tests and
  /// shutdown paths. Returns the number of objects reclaimed.
  size_t Reclaim() SMOKE_EXCLUDES(mu_);

  struct Stats {
    uint64_t epoch = 0;        ///< current epoch clock
    size_t pinned = 0;         ///< live pins across all epochs
    size_t retired = 0;        ///< objects awaiting reclamation
    uint64_t reclaimed = 0;    ///< objects freed so far
  };
  Stats GetStats() const SMOKE_EXCLUDES(mu_);

 private:
  struct Retired {
    uint64_t epoch = 0;  ///< objects retired at e are freed when min pin > e
    std::function<void()> deleter;
  };

  void Unpin(uint64_t epoch) SMOKE_EXCLUDES(mu_);
  /// Moves reclaimable entries out of retired_; the caller must hold mu_
  /// (machine-checked) and must run the returned deleters only after
  /// dropping it (they may destroy whole engines).
  std::vector<Retired> TakeReclaimableLocked() SMOKE_REQUIRES(mu_);

  mutable Mutex mu_;
  uint64_t epoch_ SMOKE_GUARDED_BY(mu_) = 0;
  /// epoch -> live pin count
  std::map<uint64_t, size_t> pins_ SMOKE_GUARDED_BY(mu_);
  /// retire-epoch order (non-decreasing)
  std::vector<Retired> retired_ SMOKE_GUARDED_BY(mu_);
  uint64_t reclaimed_ SMOKE_GUARDED_BY(mu_) = 0;
};

}  // namespace smoke

#endif  // SMOKE_SERVE_EPOCH_H_
