#include "serve/session.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace smoke {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Status SessionClosed(const std::string& id) {
  return Status::InvalidArgument("session '" + id + "' is closed");
}

}  // namespace

Status ServeSession::Brush(const std::string& view, rid_t out_rid,
                           BrushResult* out) {
  {
    MutexLock lock(mu_);
    if (closed_) return SessionClosed(id_);
  }
  const auto t0 = std::chrono::steady_clock::now();

  // Pin first, then read: everything below sees exactly one published
  // version, regardless of concurrent ReplaceTable calls.
  ServeCore::SnapshotRef ref = core_->AcquireSnapshot();
  const ServeSnapshot* snap = ref.snapshot;
  const PlanResult* from = nullptr;
  SMOKE_RETURN_NOT_OK(snap->engine.GetPlanResult(view, &from));

  out->snapshot_version = snap->version;
  out->views.clear();
  Status st;
  // The whole brush is one interactive-class job: it admits ahead of any
  // queued batch capture morsels, and the session's own thread co-executes,
  // so a saturated pool can only slow a brush, never park it.
  core_->pool().Run(TaskClass::kInteractive, [&] {
    for (const std::string& name : snap->views) {
      if (name == view) continue;
      const PlanResult* to = nullptr;
      st = snap->engine.GetPlanResult(name, &to);
      if (!st.ok()) return;
      LinkedBrush linked;
      st = BrushLinkedPlans(*from, view, out_rid, core_->relation(), *to,
                            name, CaptureOptions::Inject(), &linked);
      if (!st.ok()) return;
      out->views.emplace(name, std::move(linked));
    }
  });
  SMOKE_RETURN_NOT_OK(st);

  const double ms = MsSince(t0);
  MutexLock lock(mu_);
  brushes_++;
  total_brush_ms_ += ms;
  max_brush_ms_ = std::max(max_brush_ms_, ms);
  last_snapshot_version_ = snap->version;
  return Status::OK();
}

Status ServeSession::RetainBackwardTrace(const std::string& handle,
                                         const std::string& view,
                                         const std::vector<rid_t>& out_rids) {
  {
    MutexLock lock(mu_);
    if (closed_) return SessionClosed(id_);
    if (retained_.count(handle) != 0) {
      return Status::AlreadyExists("retained trace '" + handle + "'");
    }
  }

  ServeCore::SnapshotRef ref = core_->AcquireSnapshot();
  TraceResult traced;
  Status st;
  core_->pool().Run(TaskClass::kInteractive, [&] {
    st = ref.snapshot->engine.TraceBackward(view, core_->relation(), out_rids,
                                            &traced);
  });
  SMOKE_RETURN_NOT_OK(st);

  const size_t bytes =
      traced.plan.lineage.MemoryBytes() + traced.rows.MemoryBytes();
  MutexLock lock(mu_);
  if (closed_) return SessionClosed(id_);
  if (budget_ > 0 && bytes > budget_) {
    return Status::InvalidArgument(
        "trace '" + handle + "' (" + std::to_string(bytes) +
        " bytes) exceeds session '" + id_ + "' budget slice of " +
        std::to_string(budget_) + " bytes");
  }
  RetainedTrace rt;
  rt.result = std::move(traced);
  rt.version = ref.version();
  rt.ref = std::move(ref);
  retained_.emplace(handle, std::move(rt));
  tracker_.Register(handle, bytes, LineageCodec::kRaw);
  EnforceSliceLocked(handle);
  return Status::OK();
}

void ServeSession::EnforceSliceLocked(const std::string& keep) {
  while (budget_ > 0 && tracker_.total_bytes() > budget_) {
    std::string victim;
    if (!tracker_.Coldest(
            [&keep](const std::string& name, const LineageMemoryTracker::Entry&) {
              return name != keep;
            },
            &victim)) {
      break;
    }
    tracker_.Release(victim);
    retained_.erase(victim);  // drops the SnapshotRef pin too
    traces_evicted_++;
  }
}

Status ServeSession::GetRetainedTrace(const std::string& handle,
                                      const TraceResult** out,
                                      uint64_t* snapshot_version) const {
  MutexLock lock(mu_);
  if (closed_) return SessionClosed(id_);
  auto it = retained_.find(handle);
  if (it == retained_.end()) {
    return Status::NotFound("retained trace '" + handle + "'");
  }
  tracker_.Touch(handle);
  *out = &it->second.result;
  if (snapshot_version != nullptr) *snapshot_version = it->second.version;
  return Status::OK();
}

Status ServeSession::DropRetainedTrace(const std::string& handle) {
  MutexLock lock(mu_);
  if (closed_) return SessionClosed(id_);
  auto it = retained_.find(handle);
  if (it == retained_.end()) {
    return Status::NotFound("retained trace '" + handle + "'");
  }
  tracker_.Release(handle);
  retained_.erase(it);
  return Status::OK();
}

std::vector<std::string> ServeSession::RetainedTraceNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(retained_.size());
  for (const auto& [name, rt] : retained_) {
    (void)rt;
    names.push_back(name);
  }
  return names;
}

LineageStoreStats ServeSession::LineageStats() const {
  MutexLock lock(mu_);
  return tracker_.Stats();
}

size_t ServeSession::retained_bytes() const {
  MutexLock lock(mu_);
  return tracker_.total_bytes();
}

ServeSession::SessionStats ServeSession::GetStats() const {
  MutexLock lock(mu_);
  SessionStats s;
  s.brushes = brushes_;
  s.total_brush_ms = total_brush_ms_;
  s.max_brush_ms = max_brush_ms_;
  s.retained_traces = retained_.size();
  s.retained_bytes = tracker_.total_bytes();
  s.traces_evicted = traces_evicted_;
  s.last_snapshot_version = last_snapshot_version_;
  s.closed = closed_;
  return s;
}

void ServeSession::Close() {
  MutexLock lock(mu_);
  if (closed_) return;
  for (const auto& [name, rt] : retained_) {
    (void)rt;
    tracker_.Release(name);
  }
  retained_.clear();  // releases every snapshot pin
  closed_ = true;
}

}  // namespace smoke
