// The concurrent multi-session serving core (ROADMAP "Concurrent
// multi-session serving layer"; "Provenance for Interactive Visualizations"
// frames the workload: many users brushing linked views concurrently over
// shared retained state).
//
// SmokeEngine is a single-caller library: one mutator or reader at a time,
// and ReplaceTable/DropTable refuse outright while any retained query
// borrows the data. ServeCore layers a serving discipline on top:
//
//  - Snapshot/epoch layer. The unit of sharing is an immutable
//    ServeSnapshot: one SmokeEngine holding a version of every base table
//    plus the retained view plans (and their encoded, immutable-after-
//    finalize lineage indexes) executed over exactly those tables. Writers
//    (ReplaceTable / AppendRows) build the next version off to the side,
//    publish it with one atomic pointer swap, and retire the old version
//    through epoch-based reclamation (serve/epoch.h) — readers pin an
//    epoch for the duration of an access, and a retired version is freed
//    only when its last possible reader has drained. Writers never block
//    brushes; brushes never dangle.
//
//  - Session manager. ServeSession (serve/session.h) handles carry
//    per-session retained-trace handles (each pinning the snapshot version
//    it was traced against), a per-session lineage-budget slice enforced
//    through the PR 5 LineageMemoryTracker, and session-scoped cleanup on
//    close.
//
//  - Admission tier. One TieredScheduler (serve/admission.h) is shared by
//    everything: brushes run as interactive jobs, snapshot rebuilds run
//    their capture morsels at batch priority, so interactive trace work
//    preempts batch captures at morsel granularity.
//
// Threading contract: DefineView/CreateTable/Start run before serving;
// afterwards any number of session threads may brush/trace concurrently
// with at most writer-serialized ReplaceTable/AppendRows calls. ServeCore
// must outlive its sessions; close sessions before destroying the core
// (the destructor closes stragglers, but a session mid-call is a race).
#ifndef SMOKE_SERVE_SERVE_CORE_H_
#define SMOKE_SERVE_SERVE_CORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "core/smoke_engine.h"
#include "serve/admission.h"
#include "serve/epoch.h"

namespace smoke {

class ServeSession;

/// \brief One immutable published version: a private engine holding this
/// version's base tables and the retained view plans executed over them.
/// Never mutated after Build; any number of readers share it concurrently
/// (trace paths are const; the engine's LRU tracker is internally
/// synchronized).
struct ServeSnapshot {
  ServeSnapshot(uint64_t v, std::atomic<int64_t>* live)
      : version(v), live_(live) {
    live_->fetch_add(1, std::memory_order_relaxed);
  }
  ~ServeSnapshot() { live_->fetch_sub(1, std::memory_order_relaxed); }
  SMOKE_DISALLOW_COPY_AND_ASSIGN(ServeSnapshot);

  const uint64_t version;
  SmokeEngine engine;
  std::vector<std::string> views;  ///< retained view names, definition order

 private:
  std::atomic<int64_t>* live_;  ///< core's live-snapshot gauge (tests assert
                                ///< epoch reclamation drives this back down)
};

struct ServeOptions {
  /// Worker threads of the shared admission pool (submitters co-execute,
  /// so effective parallelism is num_threads + 1).
  int num_threads = 3;
  /// Default per-session lineage-budget slice in bytes (0 = unlimited);
  /// OpenSession can override per session.
  size_t session_budget_bytes = 0;
  /// Capture configuration for view execution at snapshot build — codec,
  /// pruning, morsel size. mode/scheduler/num_threads are overridden: views
  /// always capture kInject with morsels routed at batch priority.
  CaptureOptions view_capture = CaptureOptions::Inject();
};

/// \brief Versioned, multi-session serving facade over SmokeEngine.
class ServeCore {
 public:
  /// `relation` is the shared brushing relation (the lineage endpoint every
  /// view must capture on, as in PlanCrossfilter).
  explicit ServeCore(std::string relation, ServeOptions options = {});
  ~ServeCore();
  SMOKE_DISALLOW_COPY_AND_ASSIGN(ServeCore);

  // ---- definition phase (before Start) ----

  /// Registers a base table; its current contents seed snapshot version 1.
  Status CreateTable(const std::string& name, Table table)
      SMOKE_EXCLUDES(writer_mu_);

  /// Builds this view's plan against the tables of `engine` (borrow them
  /// via SmokeEngine::GetTable — each snapshot rebinds the plan to its own
  /// table versions).
  using ViewDef = std::function<Status(const SmokeEngine& engine,
                                       LogicalPlan* plan)>;

  /// Declares a view re-executed into every snapshot version. Views must
  /// capture backward and forward lineage on the brushing relation.
  Status DefineView(const std::string& name, ViewDef def)
      SMOKE_EXCLUDES(writer_mu_);

  /// Builds and publishes snapshot version 1. Serving calls (sessions,
  /// writers) are valid after this returns OK.
  Status Start() SMOKE_EXCLUDES(writer_mu_);

  // ---- writers (serialized among themselves; never block readers) ----

  /// Installs new contents for `name`: rebuilds every view over the new
  /// version off to the side, publishes the result atomically, and retires
  /// the superseded snapshot via epoch reclamation. Concurrent brushes keep
  /// reading the old version until they drain.
  Status ReplaceTable(const std::string& name, Table table)
      SMOKE_EXCLUDES(writer_mu_);

  /// Appends `delta`'s rows to `name` and publishes a new version — but,
  /// unlike ReplaceTable, builds it incrementally when it can: a persistent
  /// builder engine (seeded lazily on the first append) retains every view
  /// with refresh state, folds each delta through the retained operator
  /// DAGs in place (src/refresh/), and the new snapshot is published by
  /// deep-cloning the refreshed results — unchanged views reuse their
  /// indexes across versions instead of re-executing. Views the delta pass
  /// cannot maintain (dim-side appends, non-refreshable shapes) take a
  /// scoped rebuild inside the builder with the reason recorded in that
  /// batch's RefreshStats; if the builder path fails altogether the call
  /// falls back to the full from-scratch snapshot build. Readers are never
  /// blocked either way.
  Status AppendRows(const std::string& name, const Table& delta)
      SMOKE_EXCLUDES(writer_mu_);

  /// Per-view RefreshStats of the most recent AppendRows batch (empty
  /// before the first append). A full-rebuild fallback reports one entry
  /// with incremental=false and the reason.
  std::vector<RefreshStats> LastRefreshStats() const
      SMOKE_EXCLUDES(writer_mu_);

  // ---- readers ----

  /// \brief A pinned view of the current snapshot. The snapshot stays
  /// valid — even across concurrent ReplaceTable calls — until the ref is
  /// destroyed. Hold briefly (per brush) or deliberately (a retained trace
  /// pinning its version); every live pin delays reclamation of later
  /// retired versions.
  struct SnapshotRef {
    const ServeSnapshot* snapshot = nullptr;
    EpochManager::Guard guard;
    uint64_t version() const { return snapshot->version; }
  };

  /// Pins and returns the current snapshot. Thread-safe.
  SnapshotRef AcquireSnapshot() const;

  /// Version of the currently published snapshot.
  uint64_t CurrentVersion() const;

  // ---- sessions ----

  /// Opens a session. `budget_bytes` overrides the default per-session
  /// lineage slice (0 = use ServeOptions::session_budget_bytes). Fails on a
  /// duplicate live session id. The returned handle stays valid until
  /// CloseSession / core destruction.
  Status OpenSession(const std::string& session_id,
                     std::shared_ptr<ServeSession>* out,
                     size_t budget_bytes = 0) SMOKE_EXCLUDES(sessions_mu_);

  /// Closes the session: drops its retained traces (releasing snapshot
  /// pins and budget accounting) and unregisters it.
  Status CloseSession(const std::string& session_id)
      SMOKE_EXCLUDES(sessions_mu_);

  size_t NumSessions() const SMOKE_EXCLUDES(sessions_mu_);

  /// Aggregate retained-trace lineage bytes across live sessions (tests
  /// assert this returns to baseline when sessions close).
  size_t SessionLineageBytes() const SMOKE_EXCLUDES(sessions_mu_);

  // ---- introspection ----

  /// Live snapshot versions (published + retired-but-pinned). Settles back
  /// to 1 when readers drain — the epoch-reclamation gauge.
  int64_t LiveSnapshots() const {
    return live_snapshots_.load(std::memory_order_relaxed);
  }
  EpochManager::Stats EpochStats() const { return epochs_.GetStats(); }
  TieredScheduler::Stats AdmissionStats() const { return pool_.GetStats(); }

  const std::string& relation() const { return relation_; }

 private:
  friend class ServeSession;

  TieredScheduler& pool() { return pool_; }

  /// Executes every view def over a fresh engine seeded with the current
  /// master tables. Runs on the writer thread (writer_mu_ held — it reads
  /// the master tables and view defs); capture morsels go to the pool at
  /// batch priority.
  Status BuildSnapshot(uint64_t version, std::unique_ptr<ServeSnapshot>* out)
      SMOKE_REQUIRES(writer_mu_);

  /// Swaps `snap` in as current and retires the predecessor. Writer-only
  /// (the atomic swap itself needs no lock, but unserialized publishes
  /// would race version retirement order).
  void Publish(std::unique_ptr<ServeSnapshot> snap)
      SMOKE_REQUIRES(writer_mu_);

  /// Seeds the persistent builder engine: master-table copies plus every
  /// view executed with retain_refresh_state, ready to take deltas.
  Status SeedBuilder() SMOKE_REQUIRES(writer_mu_);

  /// Builds the next snapshot by deep-cloning the builder's refreshed view
  /// results (rebinding their lineage onto the snapshot's own table
  /// copies); views whose results cannot be cloned re-execute as in
  /// BuildSnapshot.
  Status BuildSnapshotFromBuilder(uint64_t version,
                                  std::unique_ptr<ServeSnapshot>* out)
      SMOKE_REQUIRES(writer_mu_);

  const std::string relation_;
  const ServeOptions options_;

  TieredScheduler pool_;
  TieredScheduler::Lease batch_lease_;

  mutable EpochManager epochs_;
  std::atomic<const ServeSnapshot*> current_{nullptr};
  std::atomic<int64_t> live_snapshots_{0};

  /// Serializes Start/ReplaceTable/AppendRows and guards the master copies.
  mutable Mutex writer_mu_;
  /// master copies (next version)
  std::map<std::string, Table> tables_ SMOKE_GUARDED_BY(writer_mu_);
  /// Persistent incremental builder: holds its own table copies plus every
  /// view retained with refresh state. Null until the first AppendRows
  /// seeds it; reset (invalidated) by ReplaceTable and on any builder-path
  /// failure — the full BuildSnapshot path is always correct without it.
  std::unique_ptr<SmokeEngine> builder_ SMOKE_GUARDED_BY(writer_mu_);
  std::vector<RefreshStats> last_refresh_stats_ SMOKE_GUARDED_BY(writer_mu_);
  /// definition order
  std::vector<std::pair<std::string, ViewDef>> views_
      SMOKE_GUARDED_BY(writer_mu_);
  uint64_t next_version_ SMOKE_GUARDED_BY(writer_mu_) = 1;
  bool started_ SMOKE_GUARDED_BY(writer_mu_) = false;

  mutable Mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<ServeSession>> sessions_
      SMOKE_GUARDED_BY(sessions_mu_);
};

}  // namespace smoke

#endif  // SMOKE_SERVE_SERVE_CORE_H_
