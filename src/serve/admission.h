// Latency-tiered admission over a shared worker pool (ROADMAP "Concurrent
// multi-session serving layer": interactive traces preempt batch captures).
//
// The serving core runs two very different workloads on one machine:
// interactive lineage traces (crossfilter brushes, ~ms budgets) and batch
// captures (snapshot rebuilds after ReplaceTable/append, ~100ms-seconds).
// A single FIFO pool lets one batch capture occupy every worker while a
// brush waits behind it. TieredScheduler instead keeps one fixed pool and
// two admission classes:
//
//  - every job is submitted under a TaskClass and split into tasks
//    (morsels);
//  - workers always drain interactive tasks before touching batch tasks,
//    so an arriving brush waits at most the in-flight morsel per worker —
//    preemption at morsel granularity, no thread oversubscription;
//  - the thread calling ParallelFor co-executes its own job's tasks, so
//    progress never depends on pool capacity (a saturated pool degrades to
//    caller-runs, it cannot deadlock);
//  - per-class queue-depth and latency accounting (admission wait, span)
//    feeds the serve benches and the session stats.
//
// Unlike MorselScheduler (one private batch at a time, owner thread only),
// ParallelFor here is safe to call from any number of threads concurrently
// — sessions and the snapshot writer share one pool.
#ifndef SMOKE_SERVE_ADMISSION_H_
#define SMOKE_SERVE_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "plan/scheduler.h"

namespace smoke {

/// Admission class of a job: interactive work preempts batch work at task
/// (morsel) granularity.
enum class TaskClass : uint8_t { kInteractive = 0, kBatch = 1 };

inline const char* TaskClassName(TaskClass c) {
  return c == TaskClass::kInteractive ? "interactive" : "batch";
}

/// \brief Two-class morsel scheduler: one fixed worker pool, strict
/// interactive-over-batch task dispatch, multi-producer.
class TieredScheduler {
 public:
  /// `num_threads` is the worker-pool size; submitters additionally run
  /// their own job's tasks, so total parallelism for one job is
  /// num_threads + 1. Values < 0 clamp to 0 (caller-runs-all, still
  /// correct — used by single-core tests).
  explicit TieredScheduler(int num_threads);
  ~TieredScheduler();
  SMOKE_DISALLOW_COPY_AND_ASSIGN(TieredScheduler);

  int num_threads() const { return num_threads_; }

  /// Runs fn(task, worker) for all tasks in [0, num_tasks) as one job of
  /// class `c`; blocks until the job completes. Callable from any thread,
  /// concurrently. Worker ids are in [0, num_threads + 1); the caller's
  /// slot is num_threads.
  void ParallelFor(TaskClass c, size_t num_tasks,
                   const std::function<void(size_t task, size_t worker)>& fn)
      SMOKE_EXCLUDES(mu_);

  /// Convenience: runs `fn` as a single-task job of class `c` — the
  /// admission path for whole interactive requests (a brush) as opposed to
  /// intra-job morsels.
  void Run(TaskClass c, const std::function<void()>& fn) SMOKE_EXCLUDES(mu_);

  /// Per-class admission accounting.
  struct ClassStats {
    uint64_t jobs = 0;            ///< jobs completed
    uint64_t tasks = 0;           ///< tasks (morsels) completed
    double total_wait_ms = 0;     ///< submit -> first task claimed, summed
    double max_wait_ms = 0;       ///< worst single-job admission wait
    double total_span_ms = 0;     ///< submit -> job complete, summed
    size_t queue_depth = 0;       ///< jobs currently queued or running
    size_t max_queue_depth = 0;   ///< high-water mark of the above
  };
  struct Stats {
    ClassStats interactive;
    ClassStats batch;
  };
  Stats GetStats() const SMOKE_EXCLUDES(mu_);

  /// \brief TaskScheduler adapter: presents one admission class of this
  /// pool through the interface CaptureOptions::scheduler expects, so any
  /// plan execution routes its morsels here with a priority attached.
  /// Cheap to construct; borrows the pool.
  class Lease : public TaskScheduler {
   public:
    Lease(TieredScheduler* pool, TaskClass c) : pool_(pool), class_(c) {}

    /// Kernels size per-task state (e.g. group-by partitions) off this;
    /// include the caller's slot.
    int num_threads() const override { return pool_->num_threads() + 1; }
    void ParallelFor(
        size_t num_tasks,
        const std::function<void(size_t, size_t)>& fn) override {
      pool_->ParallelFor(class_, num_tasks, fn);
    }

   private:
    TieredScheduler* pool_;
    TaskClass class_;
  };

  Lease InteractiveLease() { return Lease(this, TaskClass::kInteractive); }
  Lease BatchLease() { return Lease(this, TaskClass::kBatch); }

 private:
  /// Mutable Job state (next_task, pending, started) is guarded by the
  /// owning scheduler's mu_ — expressed on the accessors below rather than
  /// per field, since GUARDED_BY cannot name another object's mutex.
  struct Job {
    TaskClass cls = TaskClass::kBatch;
    const std::function<void(size_t, size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    size_t next_task = 0;   ///< claim cursor
    size_t pending = 0;     ///< tasks not yet finished
    bool started = false;   ///< first task claimed (ends the wait clock)
    std::chrono::steady_clock::time_point submit;
  };

  /// The next job of `queue` with unclaimed tasks, or null. Drops fully
  /// claimed jobs from the front (their owners track completion).
  std::shared_ptr<Job> FrontRunnableLocked(
      std::deque<std::shared_ptr<Job>>* queue) SMOKE_REQUIRES(mu_);
  /// Advances the claim cursor and, on the first claim, closes the
  /// admission-wait clock.
  size_t ClaimTaskLocked(Job* job) SMOKE_REQUIRES(mu_);
  /// Marks one task done; the last task closes out the job's accounting
  /// and wakes submitters.
  void FinishTask(const std::shared_ptr<Job>& job) SMOKE_EXCLUDES(mu_);
  void WorkerLoop(size_t worker) SMOKE_EXCLUDES(mu_);
  /// Claims one task (interactive first) and runs it. Returns false when
  /// no task was available.
  bool RunOneTask(size_t worker) SMOKE_EXCLUDES(mu_);

  const int num_threads_;
  std::vector<std::thread> workers_;

  mutable Mutex mu_;
  CondVar work_cv_;  ///< workers: new tasks available
  CondVar done_cv_;  ///< submitters: some job finished
  /// indexed by TaskClass
  std::deque<std::shared_ptr<Job>> queues_[2] SMOKE_GUARDED_BY(mu_);
  ClassStats stats_[2] SMOKE_GUARDED_BY(mu_);
  bool shutdown_ SMOKE_GUARDED_BY(mu_) = false;
};

}  // namespace smoke

#endif  // SMOKE_SERVE_ADMISSION_H_
