#include "serve/serve_core.h"

#include <utility>

#include "serve/session.h"

namespace smoke {

ServeCore::ServeCore(std::string relation, ServeOptions options)
    : relation_(std::move(relation)),
      options_(options),
      pool_(options.num_threads),
      batch_lease_(&pool_, TaskClass::kBatch) {}

ServeCore::~ServeCore() {
  // Close stragglers so their retained traces release their pins...
  {
    MutexLock lock(sessions_mu_);
    for (auto& [id, session] : sessions_) {
      (void)id;
      session->Close();
    }
    sessions_.clear();
  }
  // ...then retire the published snapshot and drain everything while the
  // pool and masters are still alive.
  const ServeSnapshot* cur = current_.exchange(nullptr);
  if (cur != nullptr) epochs_.Retire([cur] { delete cur; });
  epochs_.Reclaim();
}

Status ServeCore::CreateTable(const std::string& name, Table table) {
  MutexLock lock(writer_mu_);
  if (started_) {
    return Status::InvalidArgument(
        "CreateTable('" + name + "') after Start(); serving cores have a "
        "fixed schema — use ReplaceTable/AppendRows");
  }
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Status ServeCore::DefineView(const std::string& name, ViewDef def) {
  MutexLock lock(writer_mu_);
  if (started_) {
    return Status::InvalidArgument("DefineView('" + name +
                                   "') after Start()");
  }
  for (const auto& [vname, vdef] : views_) {
    (void)vdef;
    if (vname == name) return Status::AlreadyExists("view '" + name + "'");
  }
  views_.emplace_back(name, std::move(def));
  return Status::OK();
}

Status ServeCore::Start() {
  MutexLock lock(writer_mu_);
  if (started_) return Status::InvalidArgument("Start() called twice");
  if (tables_.empty()) return Status::InvalidArgument("no tables registered");
  if (tables_.count(relation_) == 0) {
    return Status::InvalidArgument("brushing relation '" + relation_ +
                                   "' is not a registered table");
  }
  if (views_.empty()) return Status::InvalidArgument("no views defined");
  std::unique_ptr<ServeSnapshot> snap;
  SMOKE_RETURN_NOT_OK(BuildSnapshot(next_version_, &snap));
  next_version_++;
  Publish(std::move(snap));
  started_ = true;
  return Status::OK();
}

Status ServeCore::ReplaceTable(const std::string& name, Table table) {
  MutexLock lock(writer_mu_);
  if (!started_) return Status::InvalidArgument("ReplaceTable before Start()");
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  if (table.num_columns() != it->second.num_columns()) {
    return Status::InvalidArgument(
        "ReplaceTable('" + name + "'): column count mismatch");
  }
  // Build the next version off to the side — readers keep brushing the
  // current snapshot, untouched, until the publish swap below.
  Table saved = std::move(it->second);
  it->second = std::move(table);
  std::unique_ptr<ServeSnapshot> snap;
  Status st = BuildSnapshot(next_version_, &snap);
  if (!st.ok()) {
    it->second = std::move(saved);  // masters stay consistent on failure
    return st;
  }
  next_version_++;
  Publish(std::move(snap));
  return Status::OK();
}

Status ServeCore::AppendRows(const std::string& name, const Table& delta) {
  MutexLock lock(writer_mu_);
  if (!started_) return Status::InvalidArgument("AppendRows before Start()");
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  if (delta.num_columns() != it->second.num_columns()) {
    return Status::InvalidArgument(
        "AppendRows('" + name + "'): column count mismatch");
  }
  Table next = it->second;  // copy: failure must not corrupt the master
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    next.AppendRowFrom(delta, static_cast<rid_t>(r));
  }
  Table saved = std::move(it->second);
  it->second = std::move(next);
  std::unique_ptr<ServeSnapshot> snap;
  Status st = BuildSnapshot(next_version_, &snap);
  if (!st.ok()) {
    it->second = std::move(saved);
    return st;
  }
  next_version_++;
  Publish(std::move(snap));
  return Status::OK();
}

Status ServeCore::BuildSnapshot(uint64_t version,
                                std::unique_ptr<ServeSnapshot>* out) {
  auto snap = std::make_unique<ServeSnapshot>(version, &live_snapshots_);
  for (const auto& [name, table] : tables_) {
    SMOKE_RETURN_NOT_OK(snap->engine.CreateTable(name, table));  // copy
  }
  // View captures run at batch priority with full morsel parallelism: an
  // interactive brush arriving mid-rebuild jumps the queue at the next
  // morsel boundary.
  CaptureOptions opts = options_.view_capture;
  opts.mode = CaptureMode::kInject;
  opts.defer_plan_finalize = false;  // brushes need finalized indexes
  opts.scheduler = &batch_lease_;
  opts.num_threads = batch_lease_.num_threads();
  for (const auto& [vname, def] : views_) {
    LogicalPlan plan;
    SMOKE_RETURN_NOT_OK(def(snap->engine, &plan));
    SMOKE_RETURN_NOT_OK(snap->engine.ExecutePlan(vname, plan, opts));
    const PlanResult* pr = nullptr;
    SMOKE_RETURN_NOT_OK(snap->engine.GetPlanResult(vname, &pr));
    int rel = pr->lineage.FindInput(relation_);
    if (rel < 0 ||
        pr->lineage.input(static_cast<size_t>(rel)).backward.empty() ||
        pr->lineage.input(static_cast<size_t>(rel)).forward.empty()) {
      return Status::InvalidArgument(
          "view '" + vname +
          "' must capture backward and forward lineage on '" + relation_ +
          "'");
    }
    snap->views.push_back(vname);
  }
  *out = std::move(snap);
  return Status::OK();
}

void ServeCore::Publish(std::unique_ptr<ServeSnapshot> snap) {
  const ServeSnapshot* old =
      current_.exchange(snap.release(), std::memory_order_acq_rel);
  if (old != nullptr) {
    // Readers pinned before this point may still hold `old`; the epoch
    // layer frees it when the last of them drains.
    epochs_.Retire([old] { delete old; });
  }
}

ServeCore::SnapshotRef ServeCore::AcquireSnapshot() const {
  SnapshotRef ref;
  // Pin strictly before the load: a snapshot retired after the pin is by
  // construction not reclaimable until this guard releases, so the loaded
  // pointer cannot dangle.
  ref.guard = epochs_.Pin();
  ref.snapshot = current_.load(std::memory_order_acquire);
  SMOKE_CHECK(ref.snapshot != nullptr);  // valid only after Start()
  return ref;
}

uint64_t ServeCore::CurrentVersion() const {
  return AcquireSnapshot().version();
}

Status ServeCore::OpenSession(const std::string& session_id,
                              std::shared_ptr<ServeSession>* out,
                              size_t budget_bytes) {
  if (current_.load(std::memory_order_acquire) == nullptr) {
    return Status::InvalidArgument("OpenSession before Start()");
  }
  const size_t budget =
      budget_bytes != 0 ? budget_bytes : options_.session_budget_bytes;
  MutexLock lock(sessions_mu_);
  if (sessions_.count(session_id) != 0) {
    return Status::AlreadyExists("session '" + session_id + "'");
  }
  std::shared_ptr<ServeSession> session(
      new ServeSession(this, session_id, budget));
  sessions_.emplace(session_id, session);
  *out = std::move(session);
  return Status::OK();
}

Status ServeCore::CloseSession(const std::string& session_id) {
  std::shared_ptr<ServeSession> session;
  {
    MutexLock lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("session '" + session_id + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  session->Close();  // outside sessions_mu_: releasing pins may reclaim
  return Status::OK();
}

size_t ServeCore::NumSessions() const {
  MutexLock lock(sessions_mu_);
  return sessions_.size();
}

size_t ServeCore::SessionLineageBytes() const {
  MutexLock lock(sessions_mu_);
  size_t total = 0;
  for (const auto& [id, session] : sessions_) {
    (void)id;
    total += session->retained_bytes();
  }
  return total;
}

}  // namespace smoke
