#include "serve/serve_core.h"

#include <unordered_map>
#include <utility>

#include "refresh/refresh.h"
#include "serve/session.h"

namespace smoke {

ServeCore::ServeCore(std::string relation, ServeOptions options)
    : relation_(std::move(relation)),
      options_(options),
      pool_(options.num_threads),
      batch_lease_(&pool_, TaskClass::kBatch) {}

ServeCore::~ServeCore() {
  // Close stragglers so their retained traces release their pins...
  {
    MutexLock lock(sessions_mu_);
    for (auto& [id, session] : sessions_) {
      (void)id;
      session->Close();
    }
    sessions_.clear();
  }
  // ...then retire the published snapshot and drain everything while the
  // pool and masters are still alive.
  const ServeSnapshot* cur = current_.exchange(nullptr);
  if (cur != nullptr) epochs_.Retire([cur] { delete cur; });
  epochs_.Reclaim();
}

Status ServeCore::CreateTable(const std::string& name, Table table) {
  MutexLock lock(writer_mu_);
  if (started_) {
    return Status::InvalidArgument(
        "CreateTable('" + name + "') after Start(); serving cores have a "
        "fixed schema — use ReplaceTable/AppendRows");
  }
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Status ServeCore::DefineView(const std::string& name, ViewDef def) {
  MutexLock lock(writer_mu_);
  if (started_) {
    return Status::InvalidArgument("DefineView('" + name +
                                   "') after Start()");
  }
  for (const auto& [vname, vdef] : views_) {
    (void)vdef;
    if (vname == name) return Status::AlreadyExists("view '" + name + "'");
  }
  views_.emplace_back(name, std::move(def));
  return Status::OK();
}

Status ServeCore::Start() {
  MutexLock lock(writer_mu_);
  if (started_) return Status::InvalidArgument("Start() called twice");
  if (tables_.empty()) return Status::InvalidArgument("no tables registered");
  if (tables_.count(relation_) == 0) {
    return Status::InvalidArgument("brushing relation '" + relation_ +
                                   "' is not a registered table");
  }
  if (views_.empty()) return Status::InvalidArgument("no views defined");
  std::unique_ptr<ServeSnapshot> snap;
  SMOKE_RETURN_NOT_OK(BuildSnapshot(next_version_, &snap));
  next_version_++;
  Publish(std::move(snap));
  started_ = true;
  return Status::OK();
}

Status ServeCore::ReplaceTable(const std::string& name, Table table) {
  MutexLock lock(writer_mu_);
  if (!started_) return Status::InvalidArgument("ReplaceTable before Start()");
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  if (table.num_columns() != it->second.num_columns()) {
    return Status::InvalidArgument(
        "ReplaceTable('" + name + "'): column count mismatch");
  }
  // Build the next version off to the side — readers keep brushing the
  // current snapshot, untouched, until the publish swap below.
  Table saved = std::move(it->second);
  it->second = std::move(table);
  // Replacement invalidates every watermark the incremental builder keeps
  // (rids into the old rows): drop it, the next append re-seeds.
  builder_.reset();
  std::unique_ptr<ServeSnapshot> snap;
  Status st = BuildSnapshot(next_version_, &snap);
  if (!st.ok()) {
    it->second = std::move(saved);  // masters stay consistent on failure
    return st;
  }
  next_version_++;
  Publish(std::move(snap));
  return Status::OK();
}

Status ServeCore::AppendRows(const std::string& name, const Table& delta) {
  MutexLock lock(writer_mu_);
  if (!started_) return Status::InvalidArgument("AppendRows before Start()");
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table '" + name + "'");
  if (delta.num_columns() != it->second.num_columns()) {
    return Status::InvalidArgument(
        "AppendRows('" + name + "'): column count mismatch");
  }
  Table next = it->second;  // copy: failure must not corrupt the master
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    next.AppendRowFrom(delta, static_cast<rid_t>(r));
  }

  // Incremental path: keep a persistent builder engine whose retained views
  // carry refresh state, fold the delta through them in place, and publish
  // by cloning — the expensive per-version work becomes O(delta), not
  // O(table). Any failure along the way drops the builder and falls through
  // to the always-correct full rebuild below.
  if (builder_ == nullptr) {
    if (Status st = SeedBuilder(); !st.ok()) builder_.reset();
  }
  if (builder_ != nullptr) {
    std::vector<RefreshStats> stats;
    Status st = builder_->AppendRows(name, delta, &stats);
    if (st.ok()) {
      Table saved = std::move(it->second);
      it->second = std::move(next);
      std::unique_ptr<ServeSnapshot> snap;
      st = BuildSnapshotFromBuilder(next_version_, &snap);
      if (st.ok()) {
        last_refresh_stats_ = std::move(stats);
        next_version_++;
        Publish(std::move(snap));
        return Status::OK();
      }
      // Clone-publish failed: masters already carry the delta (correct),
      // so rebuild the snapshot from scratch; restore on total failure.
      builder_.reset();
      st = BuildSnapshot(next_version_, &snap);
      if (!st.ok()) {
        it->second = std::move(saved);
        return st;
      }
      last_refresh_stats_.assign(1, RefreshStats{});
      last_refresh_stats_[0].table = name;
      last_refresh_stats_[0].delta_rows = delta.num_rows();
      last_refresh_stats_[0].fallback_reason =
          "builder clone-publish failed; full snapshot rebuild";
      next_version_++;
      Publish(std::move(snap));
      return Status::OK();
    }
    builder_.reset();  // refused or failed mid-append: state is suspect
  }

  Table saved = std::move(it->second);
  it->second = std::move(next);
  std::unique_ptr<ServeSnapshot> snap;
  Status st = BuildSnapshot(next_version_, &snap);
  if (!st.ok()) {
    it->second = std::move(saved);
    return st;
  }
  last_refresh_stats_.assign(1, RefreshStats{});
  last_refresh_stats_[0].table = name;
  last_refresh_stats_[0].delta_rows = delta.num_rows();
  last_refresh_stats_[0].fallback_reason =
      "incremental builder unavailable; full snapshot rebuild";
  next_version_++;
  Publish(std::move(snap));
  return Status::OK();
}

std::vector<RefreshStats> ServeCore::LastRefreshStats() const {
  MutexLock lock(writer_mu_);
  return last_refresh_stats_;
}

Status ServeCore::SeedBuilder() {
  auto builder = std::make_unique<SmokeEngine>();
  for (const auto& [name, table] : tables_) {
    SMOKE_RETURN_NOT_OK(builder->CreateTable(name, table));  // copy
  }
  CaptureOptions opts = options_.view_capture;
  opts.mode = CaptureMode::kInject;
  opts.defer_plan_finalize = false;
  opts.retain_refresh_state = true;
  opts.scheduler = &batch_lease_;
  opts.num_threads = batch_lease_.num_threads();
  for (const auto& [vname, def] : views_) {
    LogicalPlan plan;
    SMOKE_RETURN_NOT_OK(def(*builder, &plan));
    SMOKE_RETURN_NOT_OK(builder->ExecutePlan(vname, plan, opts));
  }
  builder_ = std::move(builder);
  return Status::OK();
}

Status ServeCore::BuildSnapshotFromBuilder(
    uint64_t version, std::unique_ptr<ServeSnapshot>* out) {
  auto snap = std::make_unique<ServeSnapshot>(version, &live_snapshots_);
  std::unordered_map<const Table*, const Table*> rebind;
  for (const auto& [name, table] : tables_) {
    SMOKE_RETURN_NOT_OK(snap->engine.CreateTable(name, table));  // copy
    const Table* bt = nullptr;
    const Table* st = nullptr;
    SMOKE_RETURN_NOT_OK(builder_->GetTable(name, &bt));
    SMOKE_RETURN_NOT_OK(snap->engine.GetTable(name, &st));
    rebind[bt] = st;
  }
  const LineageCodec codec = options_.view_capture.lineage_codec;
  for (const auto& [vname, def] : views_) {
    const PlanResult* built = nullptr;
    SMOKE_RETURN_NOT_OK(builder_->GetPlanResult(vname, &built));
    PlanResult clone;
    if (ClonePlanResultForServe(*built, rebind, &clone).ok()) {
      SMOKE_RETURN_NOT_OK(
          snap->engine.AdoptRetainedPlan(vname, std::move(clone), codec));
    } else {
      // Results the clone contract excludes (deferred capture, SPJA block
      // artifacts) re-execute against the snapshot's tables, as in the
      // full build.
      CaptureOptions opts = options_.view_capture;
      opts.mode = CaptureMode::kInject;
      opts.defer_plan_finalize = false;
      opts.scheduler = &batch_lease_;
      opts.num_threads = batch_lease_.num_threads();
      LogicalPlan plan;
      SMOKE_RETURN_NOT_OK(def(snap->engine, &plan));
      SMOKE_RETURN_NOT_OK(snap->engine.ExecutePlan(vname, plan, opts));
    }
    const PlanResult* pr = nullptr;
    SMOKE_RETURN_NOT_OK(snap->engine.GetPlanResult(vname, &pr));
    const int rel = pr->lineage.FindInput(relation_);
    if (rel < 0 ||
        pr->lineage.input(static_cast<size_t>(rel)).backward.empty() ||
        pr->lineage.input(static_cast<size_t>(rel)).forward.empty()) {
      return Status::InvalidArgument(
          "view '" + vname +
          "' must capture backward and forward lineage on '" + relation_ +
          "'");
    }
    snap->views.push_back(vname);
  }
  *out = std::move(snap);
  return Status::OK();
}

Status ServeCore::BuildSnapshot(uint64_t version,
                                std::unique_ptr<ServeSnapshot>* out) {
  auto snap = std::make_unique<ServeSnapshot>(version, &live_snapshots_);
  for (const auto& [name, table] : tables_) {
    SMOKE_RETURN_NOT_OK(snap->engine.CreateTable(name, table));  // copy
  }
  // View captures run at batch priority with full morsel parallelism: an
  // interactive brush arriving mid-rebuild jumps the queue at the next
  // morsel boundary.
  CaptureOptions opts = options_.view_capture;
  opts.mode = CaptureMode::kInject;
  opts.defer_plan_finalize = false;  // brushes need finalized indexes
  opts.scheduler = &batch_lease_;
  opts.num_threads = batch_lease_.num_threads();
  for (const auto& [vname, def] : views_) {
    LogicalPlan plan;
    SMOKE_RETURN_NOT_OK(def(snap->engine, &plan));
    SMOKE_RETURN_NOT_OK(snap->engine.ExecutePlan(vname, plan, opts));
    const PlanResult* pr = nullptr;
    SMOKE_RETURN_NOT_OK(snap->engine.GetPlanResult(vname, &pr));
    int rel = pr->lineage.FindInput(relation_);
    if (rel < 0 ||
        pr->lineage.input(static_cast<size_t>(rel)).backward.empty() ||
        pr->lineage.input(static_cast<size_t>(rel)).forward.empty()) {
      return Status::InvalidArgument(
          "view '" + vname +
          "' must capture backward and forward lineage on '" + relation_ +
          "'");
    }
    snap->views.push_back(vname);
  }
  *out = std::move(snap);
  return Status::OK();
}

void ServeCore::Publish(std::unique_ptr<ServeSnapshot> snap) {
  const ServeSnapshot* old =
      current_.exchange(snap.release(), std::memory_order_acq_rel);
  if (old != nullptr) {
    // Readers pinned before this point may still hold `old`; the epoch
    // layer frees it when the last of them drains.
    epochs_.Retire([old] { delete old; });
  }
}

ServeCore::SnapshotRef ServeCore::AcquireSnapshot() const {
  SnapshotRef ref;
  // Pin strictly before the load: a snapshot retired after the pin is by
  // construction not reclaimable until this guard releases, so the loaded
  // pointer cannot dangle.
  ref.guard = epochs_.Pin();
  ref.snapshot = current_.load(std::memory_order_acquire);
  SMOKE_CHECK(ref.snapshot != nullptr);  // valid only after Start()
  return ref;
}

uint64_t ServeCore::CurrentVersion() const {
  return AcquireSnapshot().version();
}

Status ServeCore::OpenSession(const std::string& session_id,
                              std::shared_ptr<ServeSession>* out,
                              size_t budget_bytes) {
  if (current_.load(std::memory_order_acquire) == nullptr) {
    return Status::InvalidArgument("OpenSession before Start()");
  }
  const size_t budget =
      budget_bytes != 0 ? budget_bytes : options_.session_budget_bytes;
  MutexLock lock(sessions_mu_);
  if (sessions_.count(session_id) != 0) {
    return Status::AlreadyExists("session '" + session_id + "'");
  }
  std::shared_ptr<ServeSession> session(
      new ServeSession(this, session_id, budget));
  sessions_.emplace(session_id, session);
  *out = std::move(session);
  return Status::OK();
}

Status ServeCore::CloseSession(const std::string& session_id) {
  std::shared_ptr<ServeSession> session;
  {
    MutexLock lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("session '" + session_id + "'");
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  session->Close();  // outside sessions_mu_: releasing pins may reclaim
  return Status::OK();
}

size_t ServeCore::NumSessions() const {
  MutexLock lock(sessions_mu_);
  return sessions_.size();
}

size_t ServeCore::SessionLineageBytes() const {
  MutexLock lock(sessions_mu_);
  size_t total = 0;
  for (const auto& [id, session] : sessions_) {
    (void)id;
    total += session->retained_bytes();
  }
  return total;
}

}  // namespace smoke
