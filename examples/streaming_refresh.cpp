// Refresh and forward propagation (the paper's query-model footnote):
// maintain a live aggregation view over a growing, changing table without
// re-running the query — new rows fold into the retained hash table
// (RefreshAppend) and in-place updates recompute only the affected output
// groups via forward lineage (ForwardPropagate).
//
//   $ ./example_streaming_refresh
#include <cstdio>

#include "common/timer.h"
#include "refresh/refresh.h"
#include "workloads/zipf_table.h"

using namespace smoke;

int main() {
  Table events = MakeZipfTable(200000, 16, 1.0);

  GroupBySpec spec;
  spec.key_names = {"z"};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col("v"), "sum_v"),
               AggSpec::Avg(ScalarExpr::Col("v"), "avg_v")};

  WallTimer timer;
  auto view = GroupByExec(events, "events", spec, CaptureOptions::Inject());
  std::printf("Initial view over %zu rows: %zu groups in %.1f ms\n",
              events.num_rows(), view.output.num_rows(), timer.ElapsedMs());

  // A batch of new events arrives.
  Table batch = MakeZipfTable(5000, 24, 0.8, 99);
  rid_t first_new = static_cast<rid_t>(events.num_rows());
  for (rid_t r = 0; r < batch.num_rows(); ++r) events.AppendRowFrom(batch, r);

  timer.Start();
  auto changed = RefreshAppend(&view, events, first_new);
  std::printf("RefreshAppend of %zu rows: %zu groups updated in %.2f ms "
              "(now %zu groups)\n",
              batch.num_rows(), changed.size(), timer.ElapsedMs(),
              view.output.num_rows());

  // A correction: three rows' values change in place.
  std::vector<rid_t> corrected = {10, 1000, 150000};
  for (rid_t r : corrected) {
    events.mutable_column(zipf_table::kV).mutable_doubles()[r] = 0.0;
  }
  timer.Start();
  auto affected = ForwardPropagate(&view, events, corrected);
  std::printf("ForwardPropagate of 3 corrections: %zu groups recomputed via "
              "their backward lineage in %.2f ms\n",
              affected.size(), timer.ElapsedMs());

  // Compare against a full re-run.
  timer.Start();
  auto full = GroupByExec(events, "events", spec, CaptureOptions::Inject());
  std::printf("(full recompute for comparison: %.1f ms)\n",
              timer.ElapsedMs());

  std::printf("\nView after maintenance:\n%s\n", view.output.ToString(8).c_str());
  return 0;
}
