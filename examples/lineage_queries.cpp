// The unified lineage-consumption API: trace → filter → aggregate → chain.
//
// Lineage queries are relational queries (paper §2.1), so TraceBuilder
// compiles them into ordinary plans — a Trace node (the secondary index
// scan) feeding Select / Derive / GroupBy — executed by the same
// lineage-instrumented executor as base queries. The consuming query
// therefore captures its *own* lineage, which is what makes the
// Q1 → Q1a → Q1c drill-down chain below a plain sequence of traces.
//
//   $ ./example_lineage_queries
#include <cstdio>

#include "common/timer.h"
#include "core/smoke_engine.h"
#include "query/trace_builder.h"
#include "workloads/tpch.h"

using namespace smoke;

int main() {
  std::printf("Generating TPC-H (SF 0.05)...\n");
  tpch::Database db = tpch::Generate(0.05);

  SmokeEngine engine;
  SMOKE_CHECK(engine.CreateTable("lineitem", std::move(db.lineitem)).ok());
  const Table* lineitem = nullptr;
  SMOKE_CHECK(engine.GetTable("lineitem", &lineitem).ok());

  // ---- base query: Q1 retained with inject capture ----
  SPJAQuery q1 = tpch::MakeQ1(db);
  q1.fact = lineitem;
  WallTimer timer;
  SMOKE_CHECK(engine.ExecuteQuery("q1", q1).ok());
  const Table* overview = nullptr;
  SMOKE_CHECK(engine.GetResult("q1", &overview).ok());
  std::printf("Q1 + capture: %.1f ms, %zu bars\n", timer.ElapsedMs(),
              overview->num_rows());

  // ---- trace: the typed handle carries rids + rows + chainable lineage ----
  timer.Start();
  TraceResult bar0;
  SMOKE_CHECK(engine.TraceBackward("q1", "lineitem", {0}, &bar0).ok());
  std::printf("Lb(bar 0): %zu lineitem rows in %.2f ms\n", bar0.rids.size(),
              timer.ElapsedMs());

  // ---- trace + filter + aggregate: a consuming query as one plan ----
  // SELECT year, month, COUNT(*), SUM(qty) FROM Lb(bar 0, lineitem)
  // WHERE l_shipmode = 'MAIL' GROUP BY year, month — compiled to
  // Trace → Select → Derive → GroupBy and retained as "q1b".
  TraceSource q1_src;
  SMOKE_CHECK(engine.MakeTraceSource("q1", &q1_src).ok());
  TraceBuilder q1b = TraceBuilder::Backward(q1_src, "lineitem", {0});
  q1b.Filter(Predicate::Str("l_shipmode", CmpOp::kEq, "MAIL"))
      .GroupBy(GroupExpr::Year("l_shipdate"))
      .GroupBy(GroupExpr::Month("l_shipdate"))
      .Agg(AggSpec::Count("cnt"))
      .Agg(AggSpec::Sum(ScalarExpr::Col("l_quantity"), "sum_qty"));

  LineageQuery compiled;
  SMOKE_CHECK(q1b.Compile(&compiled).ok());
  std::printf("\ncompiled consuming plan (strategy: %s):\n%s",
              TraceStrategyName(compiled.strategy()),
              compiled.plan().ToString().c_str());

  timer.Start();
  SMOKE_CHECK(engine.ExecuteTraceQuery("q1b", q1b).ok());
  const Table* cells = nullptr;
  SMOKE_CHECK(engine.GetResult("q1b", &cells).ok());
  std::printf("Q1b: %zu (year, month) cells in %.2f ms\n", cells->num_rows(),
              timer.ElapsedMs());

  // ---- chain: the retained consuming result is just another query ----
  // Drill into its first cell by l_tax — tracing straight through the
  // consuming query's own composed lineage back to lineitem.
  TraceSource q1b_src;
  SMOKE_CHECK(engine.MakeTraceSource("q1b", &q1b_src).ok());
  TraceBuilder q1c = TraceBuilder::Backward(q1b_src, "lineitem", {0});
  q1c.GroupBy(GroupExpr::Scale100("l_tax", "l_tax_x100"))
      .Agg(AggSpec::Count("cnt"));
  timer.Start();
  SMOKE_CHECK(engine.ExecuteTraceQuery("q1c", q1c).ok());
  const Table* by_tax = nullptr;
  SMOKE_CHECK(engine.GetResult("q1c", &by_tax).ok());
  std::printf("Q1c chained over Q1b cell 0: %zu tax buckets in %.2f ms\n%s\n",
              by_tax->num_rows(), timer.ElapsedMs(),
              by_tax->ToString().c_str());

  // ---- details on demand: the handle's rows are already materialized ----
  std::printf("first traced row of bar 0: rid %u\n",
              bar0.rids.empty() ? 0 : bar0.rids[0]);
  return 0;
}
