// Multi-session serving: two clients brush linked views concurrently while
// the base table is replaced underneath them — the serving core publishes
// each replacement as a new immutable snapshot version, so every brush sees
// exactly one complete version and the retired one is freed only after its
// last reader drains (epoch reclamation). Alice additionally retains a
// trace, which pins "her" version across the replacement.
//
//   $ ./example_crossfilter_server
#include <cstdio>
#include <thread>

#include "serve/serve_core.h"
#include "serve/session.h"
#include "workloads/zipf_table.h"

using namespace smoke;

namespace {

ServeCore::ViewDef HistogramView(std::string key_col) {
  return [key_col](const SmokeEngine& engine, LogicalPlan* plan) {
    const Table* t = nullptr;
    SMOKE_RETURN_NOT_OK(engine.GetTable("zipf", &t));
    PlanBuilder b;
    GroupBySpec spec;
    spec.key_names = {key_col};
    spec.aggs = {AggSpec::Count("cnt"),
                 AggSpec::Sum(ScalarExpr::Col("v"), "sum_v")};
    return b.Build(b.GroupBy(b.Scan(t, "zipf"), spec), plan);
  };
}

ServeCore::ViewDef HotView() {
  return [](const SmokeEngine& engine, LogicalPlan* plan) {
    const Table* t = nullptr;
    SMOKE_RETURN_NOT_OK(engine.GetTable("zipf", &t));
    PlanBuilder b;
    int sel = b.Select(b.Scan(t, "zipf"),
                       {Predicate::Double("v", CmpOp::kGe, 75.0)});
    GroupBySpec spec;
    spec.key_names = {"z"};
    spec.aggs = {AggSpec::Count("cnt")};
    return b.Build(b.GroupBy(sel, spec), plan);
  };
}

void BrushAndReport(const char* who, ServeSession& session, rid_t bar) {
  ServeSession::BrushResult r;
  SMOKE_CHECK(session.Brush("by_z", bar, &r).ok());
  const LinkedBrush& hot = r.views.at("hot");
  long long witnesses = 0;
  for (int64_t c : hot.counts) witnesses += c;
  std::printf(
      "  %s brushed by_z bar %u on snapshot v%llu: %zu linked hot bars, "
      "%lld witness rows\n",
      who, bar, static_cast<unsigned long long>(r.snapshot_version),
      hot.rids.size(), witnesses);
}

}  // namespace

int main() {
  const size_t kRows = 200000;
  std::printf("Starting serving core (%zu rows, 2 views, 2 workers)...\n",
              kRows);
  ServeOptions opts;
  opts.num_threads = 2;
  ServeCore core("zipf", opts);
  SMOKE_CHECK(core.CreateTable("zipf", MakeZipfTable(kRows, 12, 1.0)).ok());
  SMOKE_CHECK(core.DefineView("by_z", HistogramView("z")).ok());
  SMOKE_CHECK(core.DefineView("hot", HotView()).ok());
  SMOKE_CHECK(core.Start().ok());

  std::shared_ptr<ServeSession> alice, bob;
  SMOKE_CHECK(core.OpenSession("alice", &alice).ok());
  SMOKE_CHECK(core.OpenSession("bob", &bob).ok());

  std::printf("\nBoth sessions brush snapshot v1:\n");
  BrushAndReport("alice", *alice, 0);
  BrushAndReport("bob", *bob, 1);

  // Alice retains a trace: it pins version 1 for as long as she keeps it.
  SMOKE_CHECK(alice->RetainBackwardTrace("pinned", "by_z", {0}).ok());

  // The writer replaces the table while both sessions keep brushing; each
  // brush lands on exactly one version — never a mix.
  std::printf("\nReplacing the base table (writer thread) while brushing:\n");
  std::thread writer([&core, kRows] {
    SMOKE_CHECK(
        core.ReplaceTable("zipf", MakeZipfTable(kRows, 12, 1.0, 1234)).ok());
  });
  for (int i = 0; i < 3; ++i) {
    BrushAndReport("alice", *alice, 0);
    BrushAndReport("bob", *bob, 1);
  }
  writer.join();
  BrushAndReport("bob (after replace)", *bob, 1);

  // Alice's retained trace still reads version 1 — which therefore cannot
  // be reclaimed yet.
  const TraceResult* trace = nullptr;
  uint64_t version = 0;
  SMOKE_CHECK(alice->GetRetainedTrace("pinned", &trace, &version).ok());
  std::printf(
      "\nAlice's retained trace: %zu rows of snapshot v%llu "
      "(live snapshots: %lld, current v%llu)\n",
      trace->rids.size(), static_cast<unsigned long long>(version),
      static_cast<long long>(core.LiveSnapshots()),
      static_cast<unsigned long long>(core.CurrentVersion()));

  // Closing her session releases the pin; the retired version reclaims.
  SMOKE_CHECK(core.CloseSession("alice").ok());
  SMOKE_CHECK(core.CloseSession("bob").ok());
  const auto epochs = core.EpochStats();
  std::printf(
      "After close: live snapshots %lld, reclaimed %llu (epoch %llu)\n",
      static_cast<long long>(core.LiveSnapshots()),
      static_cast<unsigned long long>(epochs.reclaimed),
      static_cast<unsigned long long>(epochs.epoch));

  const auto admission = core.AdmissionStats();
  std::printf(
      "Admission: %llu interactive jobs (max wait %.2f ms), %llu batch "
      "morsels for snapshot rebuilds\n",
      static_cast<unsigned long long>(admission.interactive.jobs),
      admission.interactive.max_wait_ms,
      static_cast<unsigned long long>(admission.batch.tasks));
  return 0;
}
