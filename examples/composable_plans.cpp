// Composable lineage-instrumented plans: build operator DAGs that the
// monolithic SPJA block cannot express, capture lineage end-to-end, and ask
// lineage queries through the engine facade.
//
//   $ ./example_composable_plans
#include <cstdio>

#include "core/smoke_engine.h"
#include "plan/executor.h"
#include "plan/plan.h"

using namespace smoke;

// Every engine call returns a [[nodiscard]] Status; an example that dropped
// one would not compile (-Werror=unused-result).
#define OR_DIE(expr)                                              \
  do {                                                            \
    Status _st = (expr);                                          \
    if (!_st.ok()) {                                              \
      std::printf("%s failed: %s\n", #expr, _st.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (0)

int main() {
  SmokeEngine engine;

  // 1. Base relation: sales(region_id, amount).
  Schema schema;
  schema.AddField("region_id", DataType::kInt64);
  schema.AddField("amount", DataType::kFloat64);
  Table sales(schema);
  const int64_t regions[] = {0, 1, 2, 0, 1, 2, 3, 0, 1, 0, 3, 2};
  for (int i = 0; i < 12; ++i) {
    sales.AppendRow({regions[i], static_cast<double>(i + 1)});
  }
  OR_DIE(engine.CreateTable("sales", std::move(sales)));
  const Table* base = nullptr;
  OR_DIE(engine.GetTable("sales", &base));

  // 2. An aggregate-over-aggregate rollup: COUNT/SUM per region, then
  //    regroup the regions by their sales count. Every operator captures
  //    its own lineage fragment; the executor composes them end-to-end.
  PlanBuilder b;
  int scan = b.Scan(base, "sales");
  GroupBySpec per_region;
  per_region.key_names = {"region_id"};
  per_region.aggs = {AggSpec::Count("cnt"),
                     AggSpec::Sum(ScalarExpr::Col("amount"), "sum_amount")};
  int gb1 = b.GroupBy(scan, per_region);
  GroupBySpec by_count;
  by_count.key_names = {"cnt"};  // the cnt column of the intermediate
  by_count.aggs = {AggSpec::Count("regions"),
                   AggSpec::Sum(ScalarExpr::Col("sum_amount"), "total")};
  int root = b.GroupBy(gb1, by_count);

  LogicalPlan plan;
  Status st = b.Build(root, &plan);
  if (!st.ok()) {
    std::printf("plan build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Plan:\n%s\n", plan.ToString().c_str());

  st = engine.ExecutePlan("rollup", plan, CaptureMode::kInject);
  if (!st.ok()) {
    std::printf("execute failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const Table* out = nullptr;
  OR_DIE(engine.GetResult("rollup", &out));
  std::printf("Rollup result:\n%s\n", out->ToString().c_str());

  // 3. Backward lineage of the first rollup row reaches the *base* sales
  //    rows, straight through both aggregations.
  Table rows;
  OR_DIE(engine.BackwardRows("rollup", "sales", {0}, &rows));
  std::printf("Base rows behind rollup row 0:\n%s\n", rows.ToString().c_str());

  // 4. Linked brushing across two independent views of the same relation
  //    (one of them a plan, the other a legacy SPJA query).
  SPJAQuery by_region_spja;
  by_region_spja.fact = base;
  by_region_spja.fact_name = "sales";
  by_region_spja.group_by = {ColRef::Fact(0)};
  by_region_spja.aggs = {AggSpec::Count("cnt")};
  OR_DIE(engine.ExecuteQuery("by_region", by_region_spja));

  std::vector<rid_t> linked;
  OR_DIE(engine.TraceAcross("rollup", {0}, "sales", "by_region", &linked));
  std::printf("Rollup row 0 brushes %zu region bars in the other view\n",
              linked.size());
  return 0;
}
