// Quickstart: run a group-by with lineage capture, then ask backward and
// forward lineage queries.
//
//   $ ./example_quickstart
#include <cstdio>

#include "engine/group_by.h"
#include "query/lineage_query.h"
#include "storage/table.h"

using namespace smoke;

int main() {
  // 1. Build a small sales relation.
  Schema schema;
  schema.AddField("region", DataType::kString);
  schema.AddField("amount", DataType::kFloat64);
  Table sales(schema);
  sales.AppendRow({std::string("east"), 10.0});
  sales.AppendRow({std::string("west"), 20.0});
  sales.AppendRow({std::string("east"), 5.0});
  sales.AppendRow({std::string("north"), 7.0});
  sales.AppendRow({std::string("west"), 1.0});

  std::printf("Input relation:\n%s\n", sales.ToString().c_str());

  // 2. Run SELECT region, COUNT(*), SUM(amount) GROUP BY region with
  //    Smoke-I (inject) lineage capture.
  GroupBySpec spec;
  spec.key_names = {"region"};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col("amount"), "sum")};
  GroupByResult result =
      GroupByExec(sales, "sales", spec, CaptureOptions::Inject());

  std::printf("Query output:\n%s\n", result.output.ToString().c_str());

  // 3. Backward lineage: which input rows produced output group 0?
  std::vector<rid_t> back = BackwardRids(result.lineage, "sales", {0});
  std::printf("Backward lineage of output 0 (%s): rids [",
              result.output.column(0).strings()[0].c_str());
  for (size_t i = 0; i < back.size(); ++i) {
    std::printf("%s%u", i ? ", " : "", back[i]);
  }
  std::printf("]\n");
  Table rows = MaterializeRows(sales, back);
  std::printf("%s\n", rows.ToString().c_str());

  // 4. Forward lineage: which outputs does input row 1 feed?
  std::vector<rid_t> fwd = ForwardRids(result.lineage, "sales", {1});
  std::printf("Forward lineage of input 1 (west, 20.0): output rid %u\n",
              fwd[0]);

  return 0;
}
