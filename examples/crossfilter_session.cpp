// Crossfilter session (the paper's Section 6.5.1): four linked histogram
// views over an Ontime-like flights table; brushing a bar updates the other
// views over that bar's backward lineage, using the BT+FT strategy
// (backward index to find the rows, forward indexes as perfect hashes to
// update the bars).
//
//   $ ./example_crossfilter_session
#include <cstdio>

#include "apps/crossfilter.h"
#include "common/timer.h"
#include "workloads/ontime.h"

using namespace smoke;

int main() {
  const size_t kRows = 500000;
  std::printf("Generating %zu flights...\n", kRows);
  Table flights = ontime::Generate(kRows);

  Crossfilter cf(flights, {ontime::kLatLonBin, ontime::kDateBin,
                           ontime::kDelayBin, ontime::kCarrier});

  WallTimer init;
  cf.Initialize(Crossfilter::Strategy::kBTFT);
  std::printf("Initial views + lineage capture: %.1f ms (index memory "
              "%.1f MB)\n",
              init.ElapsedMs(),
              static_cast<double>(cf.IndexMemoryBytes()) / 1e6);

  const char* names[] = {"lat/lon", "date", "delay", "carrier"};
  for (size_t v = 0; v < cf.num_views(); ++v) {
    std::printf("view %zu (%s): %zu bars\n", v, names[v], cf.NumBars(v));
  }

  // Brush the busiest carrier and report how the delay view updates.
  size_t busiest = 0;
  for (size_t b = 1; b < cf.NumBars(3); ++b) {
    if (cf.BarCount(3, b) > cf.BarCount(3, busiest)) busiest = b;
  }
  std::printf("\nBrushing carrier %lld (%lld flights)...\n",
              static_cast<long long>(cf.BarValue(3, busiest)),
              static_cast<long long>(cf.BarCount(3, busiest)));
  WallTimer brush;
  auto updated = cf.Brush(3, busiest);
  double ms = brush.ElapsedMs();
  std::printf("Brush latency: %.2f ms (interactive threshold: 150 ms)\n\n",
              ms);

  std::printf("Delay view (all flights -> brushed carrier):\n");
  for (size_t b = 0; b < cf.NumBars(2); ++b) {
    std::printf("  delay bin %lld: %8lld -> %8lld\n",
                static_cast<long long>(cf.BarValue(2, b)),
                static_cast<long long>(cf.BarCount(2, b)),
                static_cast<long long>(updated[2][b]));
  }
  return 0;
}
