// Data profiling (the paper's Section 6.5.2): check functional dependencies
// over a Physician-Compare-like table and build the violation-to-tuple
// bipartite graph, all expressed in lineage terms (Smoke-CD).
//
//   $ ./example_data_profiling
#include <cstdio>

#include "apps/profiler.h"
#include "common/timer.h"
#include "workloads/physician.h"

using namespace smoke;

int main() {
  const size_t kRows = 100000;
  std::printf("Generating %zu physician records...\n", kRows);
  Table t = physician::Generate(kRows);

  const FdSpec fds[] = {
      {physician::kNpi, physician::kPacId, "NPI -> PAC_ID"},
      {physician::kZip, physician::kState, "Zip -> State"},
      {physician::kZip, physician::kCity, "Zip -> City"},
      {physician::kLbn1, physician::kCcn1, "LBN1 -> CCN1"},
  };

  for (const FdSpec& fd : fds) {
    WallTimer timer;
    FdReport report = ProfileCD(t, fd);
    double ms = timer.ElapsedMs();
    std::printf("\nFD %-14s  %zu distinct LHS values, %zu violations "
                "(%.1f ms)\n",
                fd.name.c_str(), report.num_groups,
                report.violating_values.size(), ms);
    // Show the bipartite graph for the first few violations.
    for (size_t i = 0; i < std::min<size_t>(3, report.violating_values.size());
         ++i) {
      std::printf("  violation '%s' -> %zu tuples: ",
                  report.violating_values[i].c_str(),
                  report.bipartite.list(i).size());
      for (size_t j = 0; j < std::min<size_t>(5, report.bipartite.list(i).size());
           ++j) {
        std::printf("%u ", report.bipartite.list(i)[j]);
      }
      std::printf("%s\n",
                  report.bipartite.list(i).size() > 5 ? "..." : "");
    }
  }
  return 0;
}
