// Provenance semantics (the paper's Appendix E): from one set of rid-based
// lineage indexes, derive which-, why-, and how-provenance for the paper's
// running example (customers x orders).
//
//   $ ./example_provenance_semantics
#include <cstdio>

#include "engine/spja.h"
#include "query/provenance.h"

using namespace smoke;

int main() {
  // A = customers, B = orders (the appendix's example data).
  Schema sa;
  sa.AddField("cid", DataType::kInt64);
  sa.AddField("cname", DataType::kString);
  Table customers(sa);
  customers.AppendRow({int64_t{1}, std::string("Bob")});
  customers.AppendRow({int64_t{2}, std::string("Alice")});

  Schema sb;
  sb.AddField("oid", DataType::kInt64);
  sb.AddField("cid", DataType::kInt64);
  sb.AddField("pname", DataType::kString);
  Table orders(sb);
  orders.AppendRow({int64_t{1}, int64_t{1}, std::string("iPhone")});
  orders.AppendRow({int64_t{2}, int64_t{1}, std::string("iPhone")});
  orders.AppendRow({int64_t{3}, int64_t{2}, std::string("XBox")});

  // SELECT COUNT(*), cname, pname FROM A, B WHERE A.cid = B.cid
  // GROUP BY cname, pname.
  SPJAQuery q;
  q.fact = &orders;
  q.fact_name = "B";
  SPJADim dim;
  dim.table = &customers;
  dim.name = "A";
  dim.pk_col = 0;
  dim.fk = ColRef::Fact(1);
  q.dims.push_back(dim);
  q.group_by = {ColRef::Dim(0, 1), ColRef::Fact(2)};
  q.aggs = {AggSpec::Count("cnt")};

  auto res = SPJAExec(q, CaptureOptions::Inject());
  std::printf("Query output:\n%s\n", res.output.ToString().c_str());

  for (rid_t o = 0; o < res.output.num_rows(); ++o) {
    std::printf("Output %u (%s, %s):\n", o,
                res.output.column(0).strings()[o].c_str(),
                res.output.column(1).strings()[o].c_str());
    auto why = WhyProvenance(res.lineage, o);
    std::printf("  why-provenance: %zu witness(es):", why.size());
    for (const Witness& w : why) {
      std::printf(" (B[%u],A[%u])", w.rids[0], w.rids[1]);
    }
    std::printf("\n");
    auto which = WhichProvenance(res.lineage, o);
    std::printf("  which-provenance: B:{");
    for (rid_t r : which[0]) std::printf(" %u", r);
    std::printf(" } A:{");
    for (rid_t r : which[1]) std::printf(" %u", r);
    std::printf(" }\n");
    std::printf("  how-provenance: %s\n",
                HowProvenance(res.lineage, o).c_str());
  }
  return 0;
}
