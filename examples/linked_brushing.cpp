// Linked brushing (the paper's Figure 1): two visualization views are
// generated from queries that share an input relation. Selecting marks in
// one view highlights the marks of the other view that derive from the same
// input records — a backward lineage query followed by a forward one.
//
// The second half shows the same interaction over *retained plans* with
// PlanCrossfilter: any view shape (here an aggregate-over-aggregate rollup)
// participates in linked brushing via Trace∘Trace plan nodes.
//
//   $ ./example_linked_brushing
#include <cstdio>
#include <set>

#include "apps/plan_crossfilter.h"
#include "engine/spja.h"
#include "query/lineage_query.h"
#include "workloads/zipf_table.h"

using namespace smoke;

int main() {
  // Shared input relation X: products with price-band and margin-band
  // attributes (id, z = price band, v = revenue).
  Table x = MakeZipfTable(10000, 8, 0.8);

  // View V1: revenue by price band (a scatter/bar per band).
  SPJAQuery v1q;
  v1q.fact = &x;
  v1q.fact_name = "X";
  v1q.group_by = {ColRef::Fact(zipf_table::kZ)};
  v1q.aggs = {AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "revenue"),
              AggSpec::Count("n")};
  auto v1 = SPJAExec(v1q, CaptureOptions::Inject());

  // View V2: counts by margin decile (derived from v).
  // We bin v into deciles by materializing a binned column first.
  Schema s2 = x.schema();
  Table x2(s2);
  for (rid_t r = 0; r < x.num_rows(); ++r) x2.AppendRowFrom(x, r);
  // Reuse v column as bin: floor(v / 10) in 0..9.
  for (auto& v : x2.mutable_column(zipf_table::kV).mutable_doubles()) {
    v = static_cast<double>(static_cast<int>(v / 10.0));
  }
  SPJAQuery v2q;
  v2q.fact = &x2;
  v2q.fact_name = "X";
  v2q.group_by = {ColRef::Fact(zipf_table::kV)};
  v2q.aggs = {AggSpec::Count("n")};
  auto v2 = SPJAExec(v2q, CaptureOptions::Inject());

  std::printf("V1 (revenue by price band): %zu marks\n",
              v1.output.num_rows());
  std::printf("V2 (count by margin decile): %zu marks\n",
              v2.output.num_rows());

  // User brushes marks {0, 2} in V1.
  std::vector<rid_t> brushed = {0, 2};
  std::printf("\nUser brushes V1 marks 0 and 2 (price bands %lld and %lld)\n",
              static_cast<long long>(v1.output.column(0).ints()[0]),
              static_cast<long long>(v1.output.column(0).ints()[2]));

  // backward_trace(V1' ⊆ V1, X): the shared input records.
  std::vector<rid_t> input_rids =
      BackwardRids(v1.lineage, "X", brushed, /*dedup=*/true);
  std::printf("Backward lineage: %zu input records\n", input_rids.size());

  // forward_trace(X' ⊆ X, V2): the linked marks in V2.
  std::vector<rid_t> linked = ForwardRids(v2.lineage, "X", input_rids);
  std::set<rid_t> highlight(linked.begin(), linked.end());
  std::printf("Forward lineage: highlight %zu of %zu V2 marks: [",
              highlight.size(), v2.output.num_rows());
  bool first = true;
  for (rid_t m : highlight) {
    std::printf("%s%u", first ? "" : ", ", m);
    first = false;
  }
  std::printf("]\n");

  // ---- the same, over retained plans (any view shape) ----
  std::printf("\nLinked brushing over retained plans (PlanCrossfilter):\n");
  PlanCrossfilter session("X");
  {
    PlanBuilder b;
    GroupBySpec per_band;
    per_band.key_names = {"z"};
    per_band.aggs = {AggSpec::Sum(ScalarExpr::Col("v"), "revenue"),
                     AggSpec::Count("n")};
    LogicalPlan plan;
    SMOKE_CHECK(b.Build(b.GroupBy(b.Scan(&x, "X"), per_band), &plan).ok());
    SMOKE_CHECK(session.AddView("by_band", plan).ok());
  }
  {
    // A non-SPJA view: rollup of the per-band counts (bands grouped by how
    // many products they contain).
    PlanBuilder b;
    GroupBySpec per_band;
    per_band.key_names = {"z"};
    per_band.aggs = {AggSpec::Count("n")};
    int gb = b.GroupBy(b.Scan(&x, "X"), per_band);
    GroupBySpec by_count;
    by_count.key_names = {"n"};
    by_count.aggs = {AggSpec::Count("bands")};
    LogicalPlan plan;
    SMOKE_CHECK(b.Build(b.GroupBy(gb, by_count), &plan).ok());
    SMOKE_CHECK(session.AddView("band_sizes", plan).ok());
  }
  std::map<std::string, PlanCrossfilter::Linked> brush;
  SMOKE_CHECK(session.Brush("by_band", 0, &brush).ok());
  const auto& rollup = brush.at("band_sizes");
  std::printf("brushing by_band mark 0 links %zu band_sizes mark(s); "
              "witness counts:",
              rollup.rids.size());
  for (size_t i = 0; i < rollup.rids.size(); ++i) {
    std::printf(" mark %u x%lld", rollup.rids[i],
                static_cast<long long>(rollup.counts[i]));
  }
  std::printf("\n");
  return 0;
}
