// The "Overview first, zoom and filter, details on demand" drill-down of
// the paper's Section 6.4, on TPC-H: Q1 is the overview; Q1a drills into
// one bar by (year, month); Q1b filters with parameterized predicates
// (answered from a data-skipping partitioned index); details-on-demand is a
// plain backward lineage query.
//
//   $ ./example_tpch_drilldown
#include <cstdio>

#include "common/timer.h"
#include "engine/spja.h"
#include "query/consuming.h"
#include "query/lineage_query.h"
#include "workloads/tpch.h"

using namespace smoke;

int main() {
  std::printf("Generating TPC-H (SF 0.05)...\n");
  tpch::Database db = tpch::Generate(0.05);
  SPJAQuery q1 = tpch::MakeQ1(db);

  // Overview: Q1 with lineage capture + data-skipping partitioning on the
  // attributes the filter widgets will use.
  SPJAPushdown push;
  push.skip_cols = {tpch::kLShipmode, tpch::kLShipinstruct};
  WallTimer timer;
  auto base = SPJAExec(q1, CaptureOptions::Inject(), &push);
  std::printf("Q1 overview + capture: %.1f ms, %zu bars\n",
              timer.ElapsedMs(), base.output.num_rows());
  std::printf("%s\n", base.output.ToString().c_str());

  // Zoom: drill into bar 0 by (year, month).
  ConsumingSpec q1a = tpch::MakeQ1a(db);
  std::vector<rid_t> bar0;
  base.skip_index.TraceAllInto(0, &bar0);
  timer.Start();
  auto drill = ConsumingOverRids(db.lineitem, q1a, bar0.data(), bar0.size(),
                                 /*capture_lineage=*/false);
  std::printf("Q1a drill-down (bar 0, %zu rows): %.1f ms, %zu (year, month) "
              "cells\n",
              bar0.size(), timer.ElapsedMs(), drill.output.num_rows());

  // Filter: the user sets shipmode=MAIL, shipinstruct=NONE on a widget.
  ConsumingSpec q1b = tpch::MakeQ1b(db, "MAIL", "NONE");
  uint32_t code = base.skip_dict.CodeForString("MAIL\x1fNONE");
  timer.Start();
  auto filtered = ConsumingSkipping(db.lineitem, base.skip_index, 0, code,
                                    q1b, /*capture_lineage=*/false);
  std::printf("Q1b with data skipping: %.2f ms, %zu cells (<150ms "
              "interactive)\n",
              timer.ElapsedMs(), filtered.output.num_rows());

  // Details on demand: materialize a few lineage rows of bar 0.
  std::vector<rid_t> sample(bar0.begin(),
                            bar0.begin() + std::min<size_t>(5, bar0.size()));
  Table details = MaterializeRows(db.lineitem, sample);
  std::printf("\nDetails on demand (5 of bar 0's input rows):\n%s\n",
              details.ToString().c_str());
  return 0;
}
