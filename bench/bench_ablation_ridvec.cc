// Ablation (google-benchmark): rid-array growth policy and pre-allocation.
// Isolates the mechanism behind Smoke-I+TC/+EC: array resizing dominates
// lineage capture cost (paper Section 3.1), and exact pre-allocation
// removes it. Also compares the 1.5x growth policy against std::vector's
// doubling.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rid_vec.h"

namespace smoke {
namespace {

void BM_RidVecAppendGrow(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    RidVec v;
    for (size_t i = 0; i < n; ++i) v.PushBack(static_cast<rid_t>(i));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RidVecAppendGrow)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_RidVecAppendPreallocated(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    RidVec v(n);  // exact pre-allocation (TC hints)
    for (size_t i = 0; i < n; ++i) v.PushBack(static_cast<rid_t>(i));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RidVecAppendPreallocated)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_StdVectorAppendGrow(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<rid_t> v;
    for (size_t i = 0; i < n; ++i) v.push_back(static_cast<rid_t>(i));
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_StdVectorAppendGrow)->Arg(100)->Arg(10000)->Arg(1000000);

// Many small lists — the actual shape of a backward rid index (init
// capacity 10 matters here).
void BM_ManySmallLists(benchmark::State& state) {
  const size_t lists = 10000;
  const size_t per = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<RidVec> idx(lists);
    for (size_t i = 0; i < lists * per; ++i) {
      idx[i % lists].PushBack(static_cast<rid_t>(i));
    }
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lists * per));
}
BENCHMARK(BM_ManySmallLists)->Arg(5)->Arg(15)->Arg(100);

}  // namespace
}  // namespace smoke

BENCHMARK_MAIN();
