// Figure 13: cumulative latency to run the initial crossfilter view
// queries (with capture / cube build) and then brush every bar of every
// view. Expected shape: BT+FT completes the whole benchmark fastest and
// before the data cube finishes building; BT beats Lazy; the cube's
// interactions are near-instantaneous but its offline build dominates
// (the cold-start problem).
#include "harness.h"

#include "apps/crossfilter.h"
#include "workloads/ontime.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  const size_t rows = opts.full ? 20000000 : 2000000;
  bench::Banner("Figure 13",
                "Crossfilter cumulative latency (Ontime-like; 4 views; "
                "brush every bar)");
  std::printf("rows=%zu (paper: 123.5M)\n", rows);
  Table data = ontime::Generate(rows);
  const std::vector<int> dims = {ontime::kLatLonBin, ontime::kDateBin,
                                 ontime::kDelayBin, ontime::kCarrier};

  struct Strategy {
    const char* name;
    Crossfilter::Strategy strategy;
    size_t brush_sample;  // brush every k-th bar (1 = all); Lazy is too
                          // slow to brush all ~8100 bars at full scale.
  };
  const Strategy strategies[] = {
      {"Lazy", Crossfilter::Strategy::kLazy, 100},
      {"BT", Crossfilter::Strategy::kBT, 10},
      {"BT+FT", Crossfilter::Strategy::kBTFT, 1},
      {"DataCube", Crossfilter::Strategy::kCube, 1},
  };

  for (const Strategy& s : strategies) {
    Crossfilter cf(data, dims);
    WallTimer init_timer;
    cf.Initialize(s.strategy);
    double init_ms = init_timer.ElapsedMs();

    size_t total_bars = 0, brushed = 0;
    WallTimer brush_timer;
    for (size_t v = 0; v < cf.num_views(); ++v) {
      total_bars += cf.NumBars(v);
      for (size_t bar = 0; bar < cf.NumBars(v); bar += s.brush_sample) {
        cf.Brush(v, bar);
        ++brushed;
      }
    }
    double brush_ms = brush_timer.ElapsedMs();
    // Extrapolate sampled strategies to the full interaction count.
    double est_total_brush =
        brush_ms * static_cast<double>(total_bars) /
        static_cast<double>(brushed);
    bench::Row("fig13",
               std::string("mode=") + s.name + ",init_ms=" +
                   bench::F(init_ms) + ",brushed=" + std::to_string(brushed) +
                   ",brush_ms=" + bench::F(brush_ms) +
                   ",est_cumulative_ms=" + bench::F(init_ms + est_total_brush) +
                   ",total_bars=" + std::to_string(total_bars) +
                   ",index_mb=" +
                   bench::F(static_cast<double>(cf.IndexMemoryBytes()) / 1e6));
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
