// Shared harness for the figure-reproduction benches.
//
// Each bench binary reproduces one figure of the paper and prints the same
// series the paper reports. Measurements follow the paper's protocol
// (warm-up runs, then averaged timed runs); defaults are scaled down so the
// whole suite runs in minutes on a laptop — pass --full for paper-scale
// parameters.
#ifndef SMOKE_BENCH_HARNESS_H_
#define SMOKE_BENCH_HARNESS_H_

#include <malloc.h>

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.h"
#include "engine/capture.h"
#include "lineage/query_lineage.h"

namespace smoke {
namespace bench {

/// Stabilizes the allocator for comparative timing: without this, glibc
/// munmaps large freed blocks, so whichever technique is measured *first*
/// pays page faults on every run while later techniques inherit a raised
/// mmap threshold — skewing baselines. Keep big blocks on the heap instead.
inline void StabilizeAllocator() {
  mallopt(M_MMAP_THRESHOLD, 1 << 30);
  mallopt(M_TRIM_THRESHOLD, 1 << 30);
}

/// Process-wide output format switch: when set (--json), Row() emits one
/// JSON object per result row instead of the CSV-ish line, so CI can diff
/// perf series across runs without parsing free-form text.
inline bool& JsonRows() {
  static bool json = false;
  return json;
}

struct Options {
  bool full = false;    // paper-scale parameters
  bool smoke = false;   // CI quick mode: tiny data, one run, no warm-up
  int warmups = 1;      // paper: 3
  int runs = 3;         // paper: 15
  double scale = -1;    // TPC-H scale-factor override
  int threads = 1;      // morsel-parallel capture (CaptureOptions::num_threads)
  int sessions = 8;     // concurrent serving sessions (bench_serve_storm)
  int shards = 0;       // shard-count override (bench_shard_scaling)
  int append_batches = 0; // append-batch count override (bench_live_refresh)
  bool optimize = true; // --no-optimize: ablation of the plan rewriter

  static Options Parse(int argc, char** argv) {
    StabilizeAllocator();
    Options o;
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--full")) {
        o.full = true;
        o.warmups = 3;
        o.runs = 15;
      } else if (!std::strcmp(argv[i], "--smoke")) {
        o.smoke = true;
        o.warmups = 0;
        o.runs = 1;
      } else if (!std::strcmp(argv[i], "--json")) {
        JsonRows() = true;
      } else if (!std::strncmp(argv[i], "--runs=", 7)) {
        o.runs = std::atoi(argv[i] + 7);
      } else if (!std::strncmp(argv[i], "--warmups=", 10)) {
        o.warmups = std::atoi(argv[i] + 10);
      } else if (!std::strncmp(argv[i], "--sf=", 5)) {
        o.scale = std::atof(argv[i] + 5);
      } else if (!std::strncmp(argv[i], "--threads=", 10)) {
        o.threads = std::atoi(argv[i] + 10);
        if (o.threads < 1) o.threads = 1;
      } else if (!std::strncmp(argv[i], "--sessions=", 11)) {
        o.sessions = std::atoi(argv[i] + 11);
        if (o.sessions < 1) o.sessions = 1;
      } else if (!std::strncmp(argv[i], "--shards=", 9)) {
        o.shards = std::atoi(argv[i] + 9);
        if (o.shards < 0) o.shards = 0;
      } else if (!std::strncmp(argv[i], "--append-batches=", 17)) {
        o.append_batches = std::atoi(argv[i] + 17);
        if (o.append_batches < 0) o.append_batches = 0;
      } else if (!std::strcmp(argv[i], "--no-optimize")) {
        o.optimize = false;
      } else if (!std::strcmp(argv[i], "--help")) {
        std::printf(
            "usage: %s [--full] [--smoke] [--json] [--runs=N] [--warmups=N] "
            "[--sf=F] [--threads=N] [--sessions=N] [--shards=N] "
            "[--append-batches=N] [--no-optimize]\n",
            argv[0]);
        std::exit(0);
      }
    }
    return o;
  }

  /// Applies the --threads flag to a capture configuration (the parallel
  /// path only engages for the morsel-parallel kernels and Smoke modes).
  CaptureOptions WithThreads(CaptureOptions c) const {
    c.num_threads = threads;
    c.optimize = optimize;
    return c;
  }

  /// Row() tag for the plan-rewriter ablation: "on" normally, "off" under
  /// --no-optimize, so perf series from the two runs diff cleanly.
  const char* OptimizerTag() const { return optimize ? "on" : "off"; }
};

/// Times `fn` with warmups + timed runs; returns stats over the timed runs.
inline RunStats Measure(const Options& opts, const std::function<void()>& fn) {
  for (int i = 0; i < opts.warmups; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(opts.runs));
  for (int i = 0; i < opts.runs; ++i) {
    WallTimer t;
    fn();
    samples.push_back(t.ElapsedMs());
  }
  return RunStats::From(samples);
}

/// Prints the figure banner (including the Table 1 technique legend when
/// `modes` is non-empty).
inline void Banner(const char* figure, const char* description,
                   const std::vector<CaptureMode>& modes = {}) {
  std::printf("==================================================\n");
  std::printf("%s: %s\n", figure, description);
  if (!modes.empty()) {
    std::printf("Techniques (paper Table 1):\n");
    for (CaptureMode m : modes) {
      std::printf("  %-10s %s\n", CaptureModeName(m),
                  CaptureModeDescription(m));
    }
  }
  std::printf("==================================================\n");
}

/// One result row: fixed figure tag, then key=value pairs. CSV-ish by
/// default; with --json each row becomes one JSON line — the key=value
/// pairs are split on ',' / '=' (values never contain either), so
/// `{"figure":"fig09","theta":"0.4",...}` lands in the CI log.
inline void Row(const char* figure, const std::string& kv) {
  if (!JsonRows()) {
    std::printf("%s,%s\n", figure, kv.c_str());
    return;
  }
  std::string json = "{\"figure\":\"";
  json += figure;
  json += "\"";
  size_t start = 0;
  while (start < kv.size()) {
    size_t comma = kv.find(',', start);
    if (comma == std::string::npos) comma = kv.size();
    std::string pair = kv.substr(start, comma - start);
    size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      json += ",\"" + pair.substr(0, eq) + "\":\"" + pair.substr(eq + 1) +
              "\"";
    } else if (!pair.empty()) {
      json += ",\"" + pair + "\":true";
    }
    start = comma + 1;
  }
  json += "}";
  std::printf("%s\n", json.c_str());
}

inline std::string F(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Lineage-store accounting of an engine as Row() key=value pairs, so every
/// bench that retains queries reports lineage memory alongside timings in
/// its --json lines (compression ratio as a trackable trajectory metric).
/// Template so benches that never touch SmokeEngine skip the include.
template <typename Engine>
inline std::string LineageKv(const Engine& engine) {
  const auto s = engine.LineageMemoryStats();
  return "store_bytes=" + std::to_string(s.total_bytes) +
         ",store_budget=" + std::to_string(s.budget_bytes) +
         ",store_queries=" + std::to_string(s.num_queries) +
         ",store_evicted=" + std::to_string(s.num_evicted);
}

/// Lineage bytes of one captured result (kernel-level benches).
inline std::string LineageBytesKv(const QueryLineage& lineage) {
  return "lineage_bytes=" + std::to_string(lineage.MemoryBytes());
}

}  // namespace bench
}  // namespace smoke

#endif  // SMOKE_BENCH_HARNESS_H_
