// Figure 12: relative instrumentation overhead of the Q1b consuming-query
// pass per Q1 output group, without vs with aggregation push-down. Paper:
// average overhead rises from ~2.9% to ~9.15% with push-down — the price of
// partitioning the rid arrays on l_tax and maintaining the sub-aggregates.
#include "harness.h"

#include "capture/cube_index.h"
#include "engine/spja.h"
#include "query/consuming.h"
#include "workloads/tpch.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  const double sf = opts.scale > 0 ? opts.scale : (opts.full ? 1.0 : 0.1);
  bench::Banner("Figure 12",
                "Capture overhead of the Q1b pass without/with aggregation "
                "push-down, per Q1 output group");
  std::printf("scale factor %.2f\n", sf);
  tpch::Database db = tpch::Generate(sf);
  SPJAQuery q1 = tpch::MakeQ1(db);
  auto base = SPJAExec(q1, CaptureOptions::Inject());
  ConsumingSpec q1b = tpch::MakeQ1b(db, "MAIL", "NONE");

  for (rid_t oid = 0; oid < base.output.num_rows(); ++oid) {
    const RidVec& rids = base.lineage.input(0).backward.index().list(oid);

    // Non-instrumented: evaluate Q1b without capturing lineage.
    RunStats plain = bench::Measure(opts, [&] {
      ConsumingOverRids(db.lineitem, q1b, rids, /*capture_lineage=*/false);
    });
    // Instrumented (no push-down): capture the consuming query's backward
    // lineage.
    RunStats captured = bench::Measure(opts, [&] {
      ConsumingOverRids(db.lineitem, q1b, rids, /*capture_lineage=*/true);
    });
    // Instrumented + push-down: additionally maintain the l_tax cube.
    RunStats pushdown = bench::Measure(opts, [&] {
      auto res = ConsumingOverRids(db.lineitem, q1b, rids, true);
      CubeIndex cube;
      cube.Init(db.lineitem, {tpch::kLTax}, q1b.aggs);
      for (size_t ob = 0; ob < res.output.num_rows(); ++ob) {
        cube.AddGroup();
        for (rid_t r : res.backward.list(ob)) {
          cube.Update(static_cast<uint32_t>(ob), r);
        }
      }
    });

    double no_push_pct =
        100.0 * (captured.mean_ms - plain.mean_ms) / plain.mean_ms;
    double push_pct =
        100.0 * (pushdown.mean_ms - plain.mean_ms) / plain.mean_ms;
    bench::Row("fig12", "group=o_" + std::to_string(oid) +
                            ",no_pushdown_overhead_pct=" +
                            bench::F(no_push_pct) +
                            ",pushdown_overhead_pct=" + bench::F(push_pct));
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
