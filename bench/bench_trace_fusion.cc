// Trace-hop fusion: fused vs literal drill-down chains (linked brushing:
// backward out of one retained view, forward into another — Lf ∘ Lb, the
// paper's TraceAcross). The literal plan materializes the intermediate
// endpoint (every traced base row, full width) before the next hop probes;
// the fused plan (optimizer trace-hop fusion) collapses the chain into one
// Trace node that only materializes the final hop's endpoint. The wider the
// base relation and the larger the traced groups, the more the skipped
// intermediate copy dominates — the fused series must hold a healthy
// speedup over --no-optimize (the release canary asserts >= 1.5x).
//
// Second series: predicate push-down into the trace (SELECT * FROM Lb(o)
// WHERE pred). Optimized plans evaluate the predicate during the index
// scan, before materialization; literal plans copy every traced row and
// select afterwards.
#include "harness.h"

#include <algorithm>
#include <random>

#include "engine/group_by.h"
#include "plan/executor.h"
#include "query/trace_builder.h"

namespace smoke {
namespace {

constexpr int kValueCols = 6;

/// events(k1, k2, v0..v5): two int64 grouping keys over small domains plus
/// six payload columns — wide enough that materializing intermediate trace
/// endpoints is the dominant cost the fusion rule removes.
Table MakeEvents(size_t n, int64_t g1, int64_t g2, uint64_t seed) {
  Schema s;
  s.AddField("k1", DataType::kInt64);
  s.AddField("k2", DataType::kInt64);
  for (int c = 0; c < kValueCols; ++c) {
    s.AddField("v" + std::to_string(c), DataType::kFloat64);
  }
  Table t(s);
  std::mt19937_64 rng(seed);
  auto v = [&] { return static_cast<double>(rng() % 10000) / 100.0; };
  for (size_t i = 0; i < n; ++i) {
    t.AppendRow({static_cast<int64_t>(rng() % static_cast<uint64_t>(g1)),
                 static_cast<int64_t>(rng() % static_cast<uint64_t>(g2)),
                 v(), v(), v(), v(), v(), v()});
  }
  return t;
}

GroupBySpec SpecOver(int key) {
  GroupBySpec spec;
  spec.keys = {key};
  spec.aggs = {AggSpec::Count("cnt"), AggSpec::Sum(ScalarExpr::Col(2), "sv")};
  return spec;
}

TraceSource SourceOf(const GroupByResult& r, const char* name) {
  TraceSource s;
  s.lineage = &r.lineage;
  s.output = &r.output;
  s.name = name;
  return s;
}

void Run(const bench::Options& opts) {
  const size_t n = opts.smoke ? 100000 : (opts.full ? 5000000 : 1000000);
  const int64_t g1 = opts.smoke ? 50 : 200;  // ~n/g1 rows per traced group
  const int64_t g2 = 25;
  bench::Banner("Trace fusion",
                "Fused vs literal drill-down chains (Lf ∘ Lb across two "
                "retained views) and predicate push-down into traces");

  Table events = MakeEvents(n, g1, g2, /*seed=*/42);
  auto view1 = GroupByExec(events, "events", SpecOver(0),
                           CaptureOptions::Inject());
  auto view2 = GroupByExec(events, "events", SpecOver(1),
                           CaptureOptions::Inject());

  const size_t samples =
      std::min<size_t>(view1.output.num_rows(), opts.smoke ? 10 : 50);

  // --- Series 1: two-hop drill-down chain, fused vs literal. -------------
  for (bool optimize : {true, false}) {
    std::vector<LineageQuery> queries(samples);
    for (size_t i = 0; i < samples; ++i) {
      TraceBuilder b = TraceBuilder::Backward(SourceOf(view1, "view1"),
                                              "events",
                                              {static_cast<rid_t>(i)});
      b.ThenForward(SourceOf(view2, "view2"));
      b.Optimize(optimize);
      SMOKE_CHECK(b.Compile(&queries[i]).ok());
    }
    RunStats stats = bench::Measure(opts, [&] {
      for (const LineageQuery& q : queries) {
        PlanResult pr;
        SMOKE_CHECK(q.Execute(CaptureOptions::None(), &pr).ok());
      }
    });
    bench::Row("trace_fusion",
               std::string("series=chain,optimizer=") +
                   (optimize ? "on" : "off") + ",queries=" +
                   std::to_string(samples) + ",mean_ms_per_query=" +
                   bench::F(stats.mean_ms / static_cast<double>(samples)));
  }

  // --- Series 2: backward trace with a pushed-down predicate. ------------
  for (bool optimize : {true, false}) {
    std::vector<LineageQuery> queries(samples);
    for (size_t i = 0; i < samples; ++i) {
      TraceBuilder b = TraceBuilder::Backward(SourceOf(view1, "view1"),
                                              "events",
                                              {static_cast<rid_t>(i)});
      b.Filter(Predicate::Double(2, CmpOp::kGt, 95.0));  // ~5% pass
      b.Optimize(optimize);
      SMOKE_CHECK(b.Compile(&queries[i]).ok());
    }
    RunStats stats = bench::Measure(opts, [&] {
      for (const LineageQuery& q : queries) {
        PlanResult pr;
        SMOKE_CHECK(q.Execute(CaptureOptions::None(), &pr).ok());
      }
    });
    bench::Row("trace_fusion",
               std::string("series=filter,optimizer=") +
                   (optimize ? "on" : "off") + ",queries=" +
                   std::to_string(samples) + ",mean_ms_per_query=" +
                   bench::F(stats.mean_ms / static_cast<double>(samples)));
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
