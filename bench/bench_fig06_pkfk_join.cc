// Figure 6: pk-fk join lineage capture (gids ⋈ zipf). Expected shape:
// Logic-Idx ~1.4x relative overhead; Smoke-I ~0.4x; Smoke-I+TC (known join
// cardinalities) ~0.2x. Smoke-D is identical to Smoke-I for pk-fk joins.
#include "harness.h"

#include "engine/hash_join.h"
#include "plan/scheduler.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  std::vector<size_t> sizes =
      opts.full ? std::vector<size_t>{1000000, 5000000, 10000000}
                : std::vector<size_t>{1000000, 2000000};
  std::vector<uint64_t> group_counts = {100, 10000};
  bench::Banner("Figure 6",
                "Pk-fk join capture: Baseline vs Logic-Idx vs Smoke-I vs "
                "Smoke-I+TC (Smoke-D == Smoke-I for pk-fk)");
  // Persistent pool so --threads=N runs never pay thread spawn inside the
  // timed region.
  MorselScheduler sched(opts.threads);

  for (uint64_t g : group_counts) {
    Table gids = MakeGidsTable(g);
    for (size_t n : sizes) {
      Table zipf = MakeZipfTable(n, g, 1.0);
      JoinSpec spec;
      spec.left_key = 0;  // gids.id
      spec.right_key = zipf_table::kZ;
      spec.pk_build = true;

      CardinalityHints hints;
      hints.per_key_counts = CountPerKey(zipf, zipf_table::kZ);
      hints.have_per_key_counts = true;

      struct Variant {
        const char* name;
        CaptureMode mode;
        bool tc;
      };
      const Variant variants[] = {{"Baseline", CaptureMode::kNone, false},
                                  {"Logic-Idx", CaptureMode::kLogicIdx, false},
                                  {"Smoke-I", CaptureMode::kInject, false},
                                  {"Smoke-I+TC", CaptureMode::kInject, true}};
      double baseline_ms = 0;
      for (const Variant& v : variants) {
        // --threads=N engages the morsel-parallel probe on the Smoke modes.
        CaptureOptions co = opts.WithThreads(CaptureOptions::Mode(v.mode));
        co.scheduler = &sched;
        if (v.tc) co.hints = &hints;
        RunStats s = bench::Measure(opts, [&] {
          HashJoinExec(gids, "gids", zipf, "zipf", spec, co);
        });
        if (v.mode == CaptureMode::kNone) baseline_ms = s.mean_ms;
        double overhead =
            baseline_ms > 0 ? (s.mean_ms - baseline_ms) / baseline_ms : 0;
        bench::Row("fig06", "groups=" + std::to_string(g) + ",n=" +
                                std::to_string(n) + ",mode=" + v.name +
                                ",ms=" + bench::F(s.mean_ms) +
                                ",overhead_x=" + bench::F(overhead));
      }
    }
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
