// Capture-throughput scaling with morsel-driven parallelism: group-by and
// pk-fk join capture (Smoke-I and baseline) at 1/2/4/8 threads.
//
// Beyond the usual harness rows, each series emits one machine-readable
// JSON line (prefix "JSON ") so BENCH_*.json trajectories can track the
// scaling curve across commits:
//   JSON {"bench":"capture_scaling","series":"groupby_inject",...,
//         "threads":[1,2,4,8],"ms":[...],"mrows_s":[...],"speedup":[...]}
//
// Results and lineage are bit-identical across thread counts
// (tests/parallel_capture_test.cc); this bench measures only the wall-clock
// effect. Speedups require physical cores — on a single-core host the
// curve is flat and the series still serves as a regression anchor.
#include "harness.h"

#include <string>
#include <vector>

#include "engine/group_by.h"
#include "engine/hash_join.h"
#include "engine/select.h"
#include "plan/scheduler.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

const std::vector<int> kThreadCounts = {1, 2, 4, 8};

struct Series {
  std::string name;
  size_t rows = 0;  // input rows processed per run (throughput basis)
  std::vector<double> ms;
};

void EmitJson(const Series& s, size_t n, uint64_t groups) {
  std::string threads = "[";
  std::string ms = "[";
  std::string mrows = "[";
  std::string speedup = "[";
  for (size_t i = 0; i < kThreadCounts.size(); ++i) {
    const char* sep = i == 0 ? "" : ",";
    threads += sep + std::to_string(kThreadCounts[i]);
    ms += sep + bench::F(s.ms[i]);
    mrows += sep +
             bench::F(static_cast<double>(s.rows) / s.ms[i] / 1000.0);
    speedup += sep + bench::F(s.ms[0] / s.ms[i]);
  }
  std::printf(
      "JSON {\"bench\":\"capture_scaling\",\"series\":\"%s\",\"n\":%zu,"
      "\"groups\":%llu,\"threads\":%s],\"ms\":%s],\"mrows_s\":%s],"
      "\"speedup\":%s]}\n",
      s.name.c_str(), n, static_cast<unsigned long long>(groups),
      threads.c_str(), ms.c_str(), mrows.c_str(), speedup.c_str());
}

void Run(const bench::Options& opts) {
  const size_t n = opts.full ? 10000000 : 2000000;
  const uint64_t groups = 10000;
  bench::Banner("Capture scaling",
                "Group-by / pk-fk join capture throughput vs thread count",
                {CaptureMode::kNone, CaptureMode::kInject});

  Table zipf = MakeZipfTable(n, groups, 1.0);

  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v")};

  // gids(gid, payload): the unique build side of the pk-fk join.
  Table gids;
  {
    Schema s;
    s.AddField("gid", DataType::kInt64);
    s.AddField("payload", DataType::kInt64);
    Table t(s);
    for (uint64_t g = 0; g < groups; ++g) {
      t.AppendRow({static_cast<int64_t>(g), static_cast<int64_t>(g * 7)});
    }
    gids = std::move(t);
  }
  JoinSpec jspec;
  jspec.left_key = 0;
  jspec.right_key = zipf_table::kZ;
  jspec.pk_build = true;

  struct Workload {
    std::string name;
    CaptureMode mode;
    int kind;  // 0 = group-by, 1 = pk-fk join
  };
  const std::vector<Workload> workloads = {
      {"groupby_baseline", CaptureMode::kNone, 0},
      {"groupby_inject", CaptureMode::kInject, 0},
      {"pkfk_join_baseline", CaptureMode::kNone, 1},
      {"pkfk_join_inject", CaptureMode::kInject, 1},
  };

  for (const Workload& w : workloads) {
    Series series;
    series.name = w.name;
    series.rows = n;
    for (int threads : kThreadCounts) {
      // A persistent pool per thread count: operators reuse workers the
      // same way plan execution does.
      MorselScheduler sched(threads);
      CaptureOptions co = CaptureOptions::Mode(w.mode);
      co.num_threads = threads;
      co.scheduler = &sched;
      RunStats s = bench::Measure(opts, [&] {
        if (w.kind == 0) {
          GroupByExec(zipf, "zipf", spec, co);
        } else {
          HashJoinExec(gids, "gids", zipf, "zipf", jspec, co);
        }
      });
      series.ms.push_back(s.mean_ms);
      bench::Row("capture_scaling",
                 "series=" + w.name + ",threads=" + std::to_string(threads) +
                     ",ms=" + bench::F(s.mean_ms) + ",mrows_s=" +
                     bench::F(static_cast<double>(n) / s.mean_ms / 1000.0));
    }
    EmitJson(series, n, groups);
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::bench::Options opts = smoke::bench::Options::Parse(argc, argv);
  smoke::Run(opts);
  return 0;
}
