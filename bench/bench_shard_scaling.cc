// Sharded-execution scaling: the crossfilter group-by view executed over
// 1/2/4/8 shards (or the single count given by --shards=N), plus backward
// trace latency through the shard fan-out vs the composed index.
//
// Each row reports the shard fan-out of a selective single-group trace —
// `shards_visited` must stay below `shards_total` for shards > 1, which the
// perf canary checks from the --json lines. A machine-readable summary line
// (prefix "JSON ") carries the whole curve:
//   JSON {"bench":"shard_scaling","series":"groupby_view","n":...,
//         "shards":[1,2,4,8],"execute_ms":[...],"trace_fanout_ms":[...],
//         "trace_composed_ms":[...],"shards_visited":[...]}
//
// Results and lineage are bit-identical sharded vs unsharded
// (tests/shard_property_test.cc); this bench measures only the wall-clock
// effect and the trace fan-out.
#include "harness.h"

#include <string>
#include <vector>

#include "core/smoke_engine.h"
#include "query/lineage_query.h"
#include "shard/shard_map.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

constexpr int kTraceReps = 100;  // traces per timed run (they are cheap)

void Run(const bench::Options& opts) {
  const size_t n = opts.full ? 5000000 : (opts.smoke ? 200000 : 1000000);
  const uint64_t groups = 1000;
  bench::Banner("Shard scaling",
                "Sharded group-by view + backward trace fan-out vs shards");

  std::vector<uint32_t> shard_counts = {1, 2, 4, 8};
  if (opts.shards > 0) {
    shard_counts = {static_cast<uint32_t>(opts.shards)};
  }

  SmokeEngine engine;
  SMOKE_CHECK(engine.CreateTable("zipf", MakeZipfTable(n, groups, 1.0)).ok());
  const Table* zipf = nullptr;
  SMOKE_CHECK(engine.GetTable("zipf", &zipf).ok());

  PlanBuilder b;
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v")};
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.GroupBy(b.Scan(zipf, "zipf"), spec), &plan).ok());

  std::vector<double> execute_ms, fanout_ms, composed_ms;
  std::vector<uint32_t> visited;
  for (uint32_t shards : shard_counts) {
    SMOKE_CHECK(
        engine.ShardTable("zipf", ShardingSpec::Hash(zipf_table::kZ, shards))
            .ok());
    CaptureOptions co = opts.WithThreads(CaptureOptions::Inject());

    int run = 0;
    RunStats exec = bench::Measure(opts, [&] {
      std::string name = "view_" + std::to_string(run++);
      SMOKE_CHECK(engine.ExecutePlan(name, plan, co, nullptr).ok());
      SMOKE_CHECK(engine.DropResult(name).ok());
    });
    execute_ms.push_back(exec.mean_ms);

    // Retain one view and trace: a selective single-group seed through the
    // shard fan-out, the same seed through the composed index.
    SMOKE_CHECK(engine.ExecutePlan("view", plan, co, nullptr).ok());
    std::vector<rid_t> rids;
    ShardTraceStats stats;
    SMOKE_CHECK(
        engine.BackwardSharded("view", "zipf", {0}, &rids, &stats).ok());
    const size_t traced = rids.size();
    RunStats fan = bench::Measure(opts, [&] {
      for (int i = 0; i < kTraceReps; ++i) {
        SMOKE_CHECK(
            engine.BackwardSharded("view", "zipf", {0}, &rids, nullptr).ok());
      }
    });
    const PlanResult* pr = nullptr;
    SMOKE_CHECK(engine.GetPlanResult("view", &pr).ok());
    RunStats comp = bench::Measure(opts, [&] {
      for (int i = 0; i < kTraceReps; ++i) {
        SMOKE_CHECK(
            BackwardRidsChecked(pr->lineage, "zipf", {0}, true, &rids).ok());
      }
    });
    SMOKE_CHECK(engine.DropResult("view").ok());
    fanout_ms.push_back(fan.mean_ms);
    composed_ms.push_back(comp.mean_ms);
    visited.push_back(static_cast<uint32_t>(stats.shards_visited));

    bench::Row("shard_scaling",
               "series=groupby_view,shards=" + std::to_string(shards) +
                   ",threads=" + std::to_string(opts.threads) +
                   ",execute_ms=" + bench::F(exec.mean_ms) + ",mrows_s=" +
                   bench::F(static_cast<double>(n) / exec.mean_ms / 1000.0) +
                   ",trace_rids=" + std::to_string(traced) +
                   ",trace_fanout_ms=" + bench::F(fan.mean_ms) +
                   ",trace_composed_ms=" + bench::F(comp.mean_ms) +
                   ",shards_visited=" + std::to_string(stats.shards_visited) +
                   ",shards_total=" + std::to_string(stats.shards_total));
  }
  SMOKE_CHECK(engine.UnshardTable("zipf").ok());

  std::string sh = "[", ex = "[", fo = "[", cm = "[", vi = "[";
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    const char* sep = i == 0 ? "" : ",";
    sh += sep + std::to_string(shard_counts[i]);
    ex += sep + bench::F(execute_ms[i]);
    fo += sep + bench::F(fanout_ms[i]);
    cm += sep + bench::F(composed_ms[i]);
    vi += sep + std::to_string(visited[i]);
  }
  std::printf(
      "JSON {\"bench\":\"shard_scaling\",\"series\":\"groupby_view\","
      "\"n\":%zu,\"groups\":%llu,\"shards\":%s],\"execute_ms\":%s],"
      "\"trace_fanout_ms\":%s],\"trace_composed_ms\":%s],"
      "\"shards_visited\":%s]}\n",
      n, static_cast<unsigned long long>(groups), sh.c_str(), ex.c_str(),
      fo.c_str(), cm.c_str(), vi.c_str());
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::bench::Options opts = smoke::bench::Options::Parse(argc, argv);
  smoke::Run(opts);
  return 0;
}
