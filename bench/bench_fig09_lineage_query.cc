// Figure 9: lineage (backward) query latency for varying zipf skew theta.
// SELECT * FROM Lb(o, zipf) for every output group o. Expected shape:
// Smoke-L (secondary index scan) ~1ms and up to five orders of magnitude
// faster than Lazy (full selection scan) for low-selectivity queries;
// Logic-Rid/Logic-Tup annotated-relation scans are worse than Lazy (wider
// relation, same cardinality); Phys-Bdb pays per-call cursor fetches on top
// of Smoke-L; crossover at high skew where some groups cover much of the
// input (secondary scan loses to sequential scan).
#include "harness.h"

#include "baselines/bdb_sim.h"
#include "engine/group_by.h"
#include "plan/executor.h"
#include "query/lazy.h"
#include "query/trace_builder.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

GroupBySpec MicrobenchSpec() {
  using E = ScalarExpr;
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(E::Col(zipf_table::kV), "sum_v")};
  return spec;
}

/// SELECT * FROM Lb(o): touch every traced row (simulates materialization
/// without allocating result tables in the timing loop).
double TouchRows(const Table& t, const RidVec& rids) {
  const double* v = t.column(zipf_table::kV).doubles().data();
  double acc = 0;
  for (rid_t r : rids) acc += v[r];
  return acc;
}

void Run(const bench::Options& opts) {
  const size_t n =
      opts.smoke ? 200000 : (opts.full ? 10000000 : 2000000);
  const uint64_t groups = opts.smoke ? 500 : 5000;
  bench::Banner("Figure 9",
                "Backward lineage query latency vs skew (mean over all "
                "groups)");

  std::vector<double> thetas = {0.0, 0.4, 0.8, 1.6};
  if (opts.smoke) thetas = {0.0, 0.8};  // CI quick mode
  for (double theta : thetas) {
    Table t = MakeZipfTable(n, groups, theta);
    GroupBySpec spec = MicrobenchSpec();

    // Capture once with Smoke-I (Smoke-L covers Smoke-I/D, Logic-Idx,
    // Phys-Mem — all produce the same indexes).
    auto res = GroupByExec(t, "zipf", spec, CaptureOptions::Inject());
    const RidIndex& bw = res.lineage.input(0).backward.index();
    const size_t num_groups = bw.size();

    // Smoke-L: all groups.
    volatile double sink = 0;
    WallTimer timer;
    for (size_t g = 0; g < num_groups; ++g) {
      sink += TouchRows(t, bw.list(g));
    }
    double smoke_mean = timer.ElapsedMs() / static_cast<double>(num_groups);
    bench::Row("fig09", "theta=" + bench::F(theta) +
                            ",mode=Smoke-L,mean_ms_per_query=" +
                            bench::F(smoke_mean) + "," +
                            bench::LineageBytesKv(res.lineage));

    // The paper's crossover lives in the tail: the largest group's backward
    // lineage can cover much of the input, where a secondary index scan
    // competes with a sequential table scan.
    size_t largest = 0;
    for (size_t g = 1; g < num_groups; ++g) {
      if (bw.list(g).size() > bw.list(largest).size()) largest = g;
    }
    timer.Start();
    sink += TouchRows(t, bw.list(largest));
    bench::Row("fig09", "theta=" + bench::F(theta) +
                            ",mode=Smoke-L,largest_group_rows=" +
                            std::to_string(bw.list(largest).size()) +
                            ",largest_group_ms=" +
                            bench::F(timer.ElapsedMs()));

    // Lazy: full selection scan per query (sampled; mean is representative
    // since every scan touches all n rows).
    const auto& zs = t.column(zipf_table::kZ).ints();
    const double* vs = t.column(zipf_table::kV).doubles().data();
    const auto& out_z = res.output.column(0).ints();
    const size_t lazy_samples = std::min<size_t>(num_groups, 20);
    timer.Start();
    for (size_t i = 0; i < lazy_samples; ++i) {
      int64_t key = out_z[i * (num_groups / lazy_samples)];
      double acc = 0;
      for (size_t r = 0; r < n; ++r) {
        if (zs[r] == key) acc += vs[r];
      }
      sink += acc;
    }
    double lazy_mean = timer.ElapsedMs() / static_cast<double>(lazy_samples);
    bench::Row("fig09", "theta=" + bench::F(theta) +
                            ",mode=Lazy,mean_ms_per_query=" +
                            bench::F(lazy_mean));

    // Logic-Rid / Logic-Tup: scan the annotated relation (wider than the
    // input, same cardinality). We model the scan cost over the annotated
    // relation produced by the logical rewrite.
    auto logic =
        GroupByExec(t, "zipf", spec, CaptureOptions::Mode(CaptureMode::kLogicRid));
    const auto& ann_z = logic.annotated.column(0).ints();
    const auto& ann_rid = logic.annotated.column("prov_rid").ints();
    timer.Start();
    for (size_t i = 0; i < lazy_samples; ++i) {
      int64_t key = out_z[i * (num_groups / lazy_samples)];
      double acc = 0;
      for (size_t r = 0; r < ann_z.size(); ++r) {
        if (ann_z[r] == key) acc += vs[ann_rid[r]];
      }
      sink += acc;
    }
    double logic_mean = timer.ElapsedMs() / static_cast<double>(lazy_samples);
    bench::Row("fig09", "theta=" + bench::F(theta) +
                            ",mode=Logic-Rid,mean_ms_per_query=" +
                            bench::F(logic_mean));

    // Phys-Bdb: cursor-based fetch per rid, then the same secondary scan.
    BdbWriter bdb(/*backward=*/true, /*forward=*/false);
    CaptureOptions bdb_opts = CaptureOptions::Mode(CaptureMode::kPhysBdb);
    bdb_opts.writer = &bdb;
    GroupByExec(t, "zipf", spec, bdb_opts);
    const size_t bdb_samples = std::min<size_t>(num_groups, 500);
    std::vector<rid_t> fetched;
    timer.Start();
    for (size_t i = 0; i < bdb_samples; ++i) {
      size_t g = i * (num_groups / bdb_samples);
      fetched.clear();
      bdb.FetchBackward(static_cast<rid_t>(g), &fetched);
      double acc = 0;
      for (rid_t r : fetched) acc += vs[r];
      sink += acc;
    }
    double bdb_mean = timer.ElapsedMs() / static_cast<double>(bdb_samples);
    bench::Row("fig09", "theta=" + bench::F(theta) +
                            ",mode=Phys-Bdb,mean_ms_per_query=" +
                            bench::F(bdb_mean));

    // Plan-compiled backward trace with a predicate over the traced rows
    // (SELECT * FROM Lb(o) WHERE v > 50). With the rewriter on, the
    // predicate is pushed into the Trace node (evaluated during the index
    // scan, dropped rows never materialized); off executes the literal
    // Trace → Select plan. Both rows land in the JSON log so CI diffs the
    // rewriter's effect on the lineage-query path.
    TraceSource src;
    src.lineage = &res.lineage;
    src.output = &res.output;
    src.name = "zipf_view";
    const size_t plan_samples = std::min<size_t>(num_groups, 100);
    for (bool optimize : {true, false}) {
      std::vector<LineageQuery> queries(plan_samples);
      for (size_t i = 0; i < plan_samples; ++i) {
        rid_t g = static_cast<rid_t>(i * (num_groups / plan_samples));
        TraceBuilder tb = TraceBuilder::Backward(src, "zipf", {g});
        tb.Filter(Predicate::Double(zipf_table::kV, CmpOp::kGt, 50.0));
        tb.Optimize(optimize);
        SMOKE_CHECK(tb.Compile(&queries[i]).ok());
      }
      timer.Start();
      for (const LineageQuery& q : queries) {
        PlanResult pr;
        SMOKE_CHECK(q.Execute(CaptureOptions::None(), &pr).ok());
        sink += static_cast<double>(pr.output.num_rows());
      }
      double plan_mean =
          timer.ElapsedMs() / static_cast<double>(plan_samples);
      bench::Row("fig09",
                 "theta=" + bench::F(theta) +
                     ",mode=Smoke-L-plan,optimizer=" +
                     (optimize ? "on" : "off") +
                     ",mean_ms_per_query=" + bench::F(plan_mean));
    }
    (void)sink;
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
