// Figure 11 (+ the Section 6.4 "NoOptimization" comparison): lineage
// consuming query latency for the TPC-H Q1c drill-down under Lazy, plain
// lineage indexes (No Agg Pushdown), and group-by push-down (~0ms — just
// fetches the materialized aggregates). Paper: Smoke-I beats Lazy by 72.9x
// on average; push-down is ~0ms.
#include "harness.h"

#include "capture/cube_index.h"
#include "engine/spja.h"
#include "query/consuming.h"
#include "query/lazy.h"
#include "workloads/tpch.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  const double sf = opts.scale > 0 ? opts.scale : (opts.full ? 1.0 : 0.1);
  bench::Banner("Figure 11",
                "Aggregation push-down: Q1c consuming-query latency (Lazy vs "
                "indexed vs pushdown)");
  std::printf("scale factor %.2f\n", sf);
  tpch::Database db = tpch::Generate(sf);
  SPJAQuery q1 = tpch::MakeQ1(db);
  auto base = SPJAExec(q1, CaptureOptions::Inject());

  // Section 6.4 NoOptimization: Q1a per Q1 output group, Lazy vs Smoke-I.
  ConsumingSpec q1a = tpch::MakeQ1a(db);
  for (rid_t oid = 0; oid < base.output.num_rows(); ++oid) {
    const RidVec& rids = base.lineage.input(0).backward.index().list(oid);
    auto preds = LazyBackwardPredicates(q1, base.output, oid);
    RunStats lazy = bench::Measure(opts, [&] {
      ConsumingLazy(db.lineitem, preds, q1a, false);
    });
    RunStats indexed = bench::Measure(opts, [&] {
      ConsumingOverRids(db.lineitem, q1a, rids, false);
    });
    bench::Row("fig11", "q1a,group=" + std::to_string(oid) +
                            ",selectivity=" +
                            bench::F(static_cast<double>(rids.size()) /
                                     static_cast<double>(db.lineitem.num_rows())) +
                            ",lazy_ms=" + bench::F(lazy.mean_ms) +
                            ",smoke_ms=" + bench::F(indexed.mean_ms));
  }

  // Q1c: for each Q1 group and each Q1b parameterization, evaluate Q1c over
  // Q1b's backward lineage. Pushdown materializes the l_tax cube during the
  // Q1b pass, so Q1c becomes a lookup.
  const std::vector<std::pair<std::string, std::string>> params = {
      {"MAIL", "NONE"}, {"SHIP", "COLLECT COD"}};
  for (rid_t oid = 0; oid < base.output.num_rows(); ++oid) {
    const RidVec& rids = base.lineage.input(0).backward.index().list(oid);
    for (const auto& [mode, instr] : params) {
      ConsumingSpec q1b = tpch::MakeQ1b(db, mode, instr);
      auto q1b_res = ConsumingOverRids(db.lineitem, q1b, rids);
      ConsumingSpec q1c = tpch::MakeQ1c(db, mode, instr);

      // Group-by push-down: the l_tax cube materialized during the Q1b
      // pass (one cube group per Q1b output group).
      CubeIndex cube;
      cube.Init(db.lineitem, {tpch::kLTax}, q1b.aggs);
      for (size_t ob = 0; ob < q1b_res.output.num_rows(); ++ob) {
        cube.AddGroup();
        for (rid_t r : q1b_res.backward.list(ob)) {
          cube.Update(static_cast<uint32_t>(ob), r);
        }
      }

      for (size_t ob = 0; ob < q1b_res.output.num_rows();
           ob += std::max<size_t>(1, q1b_res.output.num_rows() / 4)) {
        const RidVec& sub = q1b_res.backward.list(ob);
        // Lazy: full scan with all accumulated predicates.
        std::vector<Predicate> lazy_preds =
            LazyBackwardPredicates(q1, base.output, oid);
        lazy_preds.push_back(Predicate::Str(tpch::kLShipmode, CmpOp::kEq, mode));
        lazy_preds.push_back(
            Predicate::Str(tpch::kLShipinstruct, CmpOp::kEq, instr));
        RunStats lazy = bench::Measure(opts, [&] {
          ConsumingLazy(db.lineitem, lazy_preds, q1c, false);
        });
        RunStats indexed = bench::Measure(opts, [&] {
          ConsumingOverRids(db.lineitem, q1c, sub, false);
        });
        RunStats pushdown = bench::Measure(opts, [&] {
          cube.GroupTable(static_cast<uint32_t>(ob));  // just a lookup
        });
        bench::Row(
            "fig11",
            "q1c,group=" + std::to_string(oid) + ",mode=" + mode +
                ",q1b_group=" + std::to_string(ob) + ",selectivity=" +
                bench::F(static_cast<double>(sub.size()) /
                         static_cast<double>(db.lineitem.num_rows())) +
                ",lazy_ms=" + bench::F(lazy.mean_ms) + ",no_pushdown_ms=" +
                bench::F(indexed.mean_ms) + ",pushdown_ms=" +
                bench::F(pushdown.mean_ms));
      }
    }
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
