// Figure 15: FD-violation evaluation + bipartite graph construction latency
// on the Physician-like dataset for Metanome-UG (string data model +
// virtual-call capture), Smoke-UG and Smoke-CD. Expected shape: Smoke-CD
// fastest overall; Smoke-UG 2-6x faster than Metanome-UG, with the largest
// gap on the integer FD NPI→PAC_ID (string modeling hurts most there).
// Note: JVM overhead is not simulated, so the absolute Metanome gap is
// smaller than the paper's (see EXPERIMENTS.md).
#include "harness.h"

#include "apps/profiler.h"
#include "workloads/physician.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  const size_t rows = opts.full ? 2200000 : 400000;
  bench::Banner("Figure 15",
                "FD violation profiling latency (bipartite graph "
                "construction included)");
  std::printf("rows=%zu (paper: 2.2M)\n", rows);
  Table t = physician::Generate(rows);

  const FdSpec fds[] = {
      {physician::kNpi, physician::kPacId, "NPI->PAC_ID"},
      {physician::kZip, physician::kState, "Zip->State"},
      {physician::kZip, physician::kCity, "Zip->City"},
      {physician::kLbn1, physician::kCcn1, "LBN1->CCN1"},
  };

  for (const FdSpec& fd : fds) {
    RunStats metanome = bench::Measure(opts, [&] { ProfileMetanomeUG(t, fd); });
    RunStats ug = bench::Measure(opts, [&] { ProfileUG(t, fd); });
    RunStats cd = bench::Measure(opts, [&] { ProfileCD(t, fd); });
    FdReport report = ProfileCD(t, fd);
    bench::Row("fig15", "fd=" + fd.name + ",mode=Metanome-UG,ms=" +
                            bench::F(metanome.mean_ms));
    bench::Row("fig15",
               "fd=" + fd.name + ",mode=Smoke-UG,ms=" + bench::F(ug.mean_ms));
    bench::Row("fig15",
               "fd=" + fd.name + ",mode=Smoke-CD,ms=" + bench::F(cd.mean_ms));
    bench::Row("fig15", "fd=" + fd.name + ",violations=" +
                            std::to_string(report.violating_values.size()) +
                            ",groups=" + std::to_string(report.num_groups));
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
