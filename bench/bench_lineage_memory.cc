// Lineage-memory figure (fig08-style, for the compressed lineage store):
// retained lineage bytes and backward/forward trace latency per rid-set
// codec {raw, range, bitmap, adaptive} across the ontime / TPC-H / zipf
// workload shapes:
//
//   zipf-select    contiguous selection over zipf (clustered rid runs —
//                  the range codec's best case; the bench exits nonzero if
//                  adaptive is not >= 4x smaller than raw here, and
//                  reports the backward-trace latency ratio as
//                  bt_slowdown_x — expected ~1x, acceptance bound 2x —
//                  without hard-asserting it, since latency is noisy in
//                  CI);
//   zipf-groupby   zipfian group-by (sorted group postings);
//   ontime-groupby crossfilter bars (29 dense carrier postings);
//   tpch-q1        TPC-H Q1 (selection + group-by over lineitem).
//
// Every row carries the engine's LineageMemoryStats() bytes alongside the
// timings, so CI can track compression ratio as a trajectory metric. The
// bench also cross-checks that backward traces are bit-identical across
// codecs and aborts loudly if they diverge.
#include "harness.h"

#include <cstdlib>

#include "core/smoke_engine.h"
#include "workloads/ontime.h"
#include "workloads/tpch.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

constexpr LineageCodec kCodecs[] = {LineageCodec::kRaw, LineageCodec::kRange,
                                    LineageCodec::kBitmap,
                                    LineageCodec::kAdaptive};

struct Series {
  double bytes = 0;
  double bt_ms = 0;  ///< mean ms per backward trace
  double ft_ms = 0;  ///< mean ms per forward trace
};

/// Retains `make_query(engine, name, codec)` under each codec in one engine,
/// measures per-codec lineage bytes + trace latency over the given seeds,
/// and emits one Row per codec. Returns raw/adaptive bytes for the
/// acceptance check. Backward results are cross-checked against raw.
void RunWorkload(const bench::Options& opts, SmokeEngine* engine,
                 const char* workload, const std::string& relation,
                 const std::function<Status(const std::string&,
                                            const CaptureOptions&)>& retain,
                 const std::vector<rid_t>& out_seeds,
                 const std::vector<rid_t>& in_seeds, Series* raw_out,
                 Series* adaptive_out) {
  std::vector<rid_t> reference;
  for (LineageCodec codec : kCodecs) {
    const std::string name = std::string(workload) + "-" +
                             LineageCodecName(codec);
    CaptureOptions copts = opts.WithThreads(CaptureOptions::Inject());
    copts.lineage_codec = codec;
    Status st = retain(name, copts);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: retain failed: %s\n", name.c_str(),
                   st.ToString().c_str());
      std::exit(1);
    }

    // Bit-identity cross-check vs the raw codec.
    std::vector<rid_t> bw;
    st = engine->Backward(name, relation, out_seeds, &bw);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: backward failed: %s\n", name.c_str(),
                   st.ToString().c_str());
      std::exit(1);
    }
    if (codec == LineageCodec::kRaw) {
      reference = bw;
    } else if (bw != reference) {
      std::fprintf(stderr, "%s: backward trace diverges from raw codec\n",
                   name.c_str());
      std::exit(1);
    }

    size_t bytes = 0;
    for (const auto& q : engine->LineageMemoryStats().queries) {
      if (q.name == name) bytes = q.bytes;
    }

    std::vector<rid_t> scratch;
    double bt_ms =
        bench::Measure(opts,
                       [&] {
                         for (rid_t o : out_seeds) {
                           // Timed loop; setup already validated the query.
                           engine->Backward(name, relation, {o}, &scratch)
                               .IgnoreError();
                         }
                       })
            .mean_ms /
        static_cast<double>(out_seeds.size());
    double ft_ms =
        bench::Measure(opts,
                       [&] {
                         for (rid_t i : in_seeds) {
                           engine->Forward(name, relation, {i}, &scratch)
                               .IgnoreError();
                         }
                       })
            .mean_ms /
        static_cast<double>(in_seeds.size());

    Series s{static_cast<double>(bytes), bt_ms, ft_ms};
    if (codec == LineageCodec::kRaw) *raw_out = s;
    if (codec == LineageCodec::kAdaptive) *adaptive_out = s;
    bench::Row(
        "figmem",
        std::string("workload=") + workload + ",codec=" +
            LineageCodecName(codec) + ",lineage_bytes=" +
            std::to_string(bytes) + ",bt_ms=" + bench::F(bt_ms) + ",ft_ms=" +
            bench::F(ft_ms) + ",threads=" + std::to_string(opts.threads) +
            "," + bench::LineageKv(*engine));
  }
}

std::vector<rid_t> SampleRange(size_t universe, size_t want) {
  std::vector<rid_t> seeds;
  const size_t step = universe / want == 0 ? 1 : universe / want;
  for (size_t r = 0; r < universe && seeds.size() < want; r += step) {
    seeds.push_back(static_cast<rid_t>(r));
  }
  return seeds;
}

void Run(const bench::Options& opts) {
  bench::Banner("Lineage memory",
                "Retained lineage bytes + trace latency per rid-set codec");

  const size_t zn = opts.smoke ? 200000 : (opts.full ? 10000000 : 2000000);
  const uint64_t groups = opts.smoke ? 500 : 5000;
  const size_t on = opts.smoke ? 100000 : (opts.full ? 5000000 : 1000000);
  const double sf = opts.scale > 0
                        ? opts.scale
                        : (opts.smoke ? 0.01 : (opts.full ? 1.0 : 0.1));

  Series raw, adaptive;

  // ---- zipf-select: the contiguous-selection (clustered) series ----
  {
    SmokeEngine engine;
    Table zipf = MakeZipfTable(zn, groups, 1.0);
    if (!engine.CreateTable("zipf", std::move(zipf)).ok()) std::exit(1);
    const Table* t = nullptr;
    if (!engine.GetTable("zipf", &t).ok()) std::exit(1);
    const rid_t lo = static_cast<rid_t>(zn / 4);
    const rid_t hi = static_cast<rid_t>(3 * zn / 4);
    RunWorkload(
        opts, &engine, "zipf-select", "zipf",
        [&](const std::string& name, const CaptureOptions& copts) {
          PlanBuilder b;
          int sel = b.Select(
              b.Scan(t, "zipf"),
              {Predicate::Int(zipf_table::kId, CmpOp::kGe,
                              static_cast<int64_t>(lo)),
               Predicate::Int(zipf_table::kId, CmpOp::kLt,
                              static_cast<int64_t>(hi))});
          LogicalPlan plan;
          SMOKE_RETURN_NOT_OK(b.Build(sel, &plan));
          return engine.ExecutePlan(name, plan, copts);
        },
        SampleRange(hi - lo, 64), SampleRange(zn, 64), &raw, &adaptive);

    // Acceptance floor for the clustered series.
    if (raw.bytes < 4 * adaptive.bytes) {
      std::fprintf(stderr,
                   "zipf-select: adaptive codec below 4x reduction "
                   "(raw=%.0f adaptive=%.0f)\n",
                   raw.bytes, adaptive.bytes);
      std::exit(1);
    }
    bench::Row("figmem",
               "workload=zipf-select,codec=summary,reduction_x=" +
                   bench::F(raw.bytes / adaptive.bytes) + ",bt_slowdown_x=" +
                   bench::F(adaptive.bt_ms / (raw.bt_ms > 0 ? raw.bt_ms : 1e-9)));
  }

  // ---- zipf-groupby: sorted group postings ----
  {
    SmokeEngine engine;
    Table zipf = MakeZipfTable(zn, groups, 1.0);
    if (!engine.CreateTable("zipf", std::move(zipf)).ok()) std::exit(1);
    const Table* t = nullptr;
    if (!engine.GetTable("zipf", &t).ok()) std::exit(1);
    SPJAQuery q;
    q.fact = t;
    q.fact_name = "zipf";
    q.group_by = {ColRef::Fact(zipf_table::kZ)};
    q.aggs = {AggSpec::Count("cnt"),
              AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v")};
    RunWorkload(
        opts, &engine, "zipf-groupby", "zipf",
        [&](const std::string& name, const CaptureOptions& copts) {
          return engine.ExecuteQuery(name, q, copts);
        },
        SampleRange(groups, 64), SampleRange(zn, 64), &raw, &adaptive);
  }

  // ---- ontime-groupby: dense carrier postings (crossfilter bars) ----
  {
    SmokeEngine engine;
    Table flights = ontime::Generate(on);
    if (!engine.CreateTable("flights", std::move(flights)).ok()) std::exit(1);
    const Table* t = nullptr;
    if (!engine.GetTable("flights", &t).ok()) std::exit(1);
    SPJAQuery q;
    q.fact = t;
    q.fact_name = "flights";
    q.group_by = {ColRef::Fact(ontime::kCarrier)};
    q.aggs = {AggSpec::Count("cnt")};
    RunWorkload(
        opts, &engine, "ontime-groupby", "flights",
        [&](const std::string& name, const CaptureOptions& copts) {
          return engine.ExecuteQuery(name, q, copts);
        },
        SampleRange(static_cast<size_t>(ontime::kNumCarriers), 16),
        SampleRange(on, 64), &raw, &adaptive);
  }

  // ---- tpch-q1 ----
  {
    SmokeEngine engine;
    tpch::Database db = tpch::Generate(sf);
    const size_t li_rows = db.lineitem.num_rows();
    SPJAQuery q = tpch::MakeQ1(db);
    if (!engine.CreateTable("lineitem", std::move(db.lineitem)).ok()) {
      std::exit(1);
    }
    const Table* t = nullptr;
    if (!engine.GetTable("lineitem", &t).ok()) std::exit(1);
    q.fact = t;  // rebind to the engine-owned copy
    RunWorkload(
        opts, &engine, "tpch-q1", "lineitem",
        [&](const std::string& name, const CaptureOptions& copts) {
          return engine.ExecuteQuery(name, q, copts);
        },
        SampleRange(4, 4), SampleRange(li_rows, 64), &raw, &adaptive);
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::bench::Options opts = smoke::bench::Options::Parse(argc, argv);
  smoke::Run(opts);
  return 0;
}
