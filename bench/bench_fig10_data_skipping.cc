// Figure 10: lineage consuming query latency (TPC-H Q1b: Q1a plus two
// parameterized text predicates) vs query selectivity, for Lazy (full table
// scan), No Data Skipping (secondary index scan over the backward index)
// and Data Skipping (scan only the matching rid partition). Expected shape:
// skipping is below the 150ms interactive threshold everywhere and at least
// ~2x better than Lazy even at high selectivity; plain indexes win at low
// selectivity but are bottlenecked by secondary scan costs for large
// groups. Also reports the capture cost of partitioning (paper: 0.22x
// without vs 1.65x with skipping on Q1).
#include "harness.h"

#include "engine/spja.h"
#include "query/consuming.h"
#include "query/lazy.h"
#include "query/trace_builder.h"
#include "workloads/tpch.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  const double sf =
      opts.scale > 0 ? opts.scale : (opts.smoke ? 0.01 : (opts.full ? 1.0 : 0.1));
  bench::Banner("Figure 10",
                "Data skipping: Q1b consuming-query latency vs selectivity");
  std::printf("scale factor %.2f\n", sf);
  tpch::Database db = tpch::Generate(sf);
  SPJAQuery q1 = tpch::MakeQ1(db);

  // Capture cost: Smoke-I vs Smoke-I + skip partitioning.
  double base_ms = bench::Measure(opts, [&] {
    SPJAExec(q1, CaptureOptions::None());
  }).mean_ms;
  double inject_ms = bench::Measure(opts, [&] {
    SPJAExec(q1, CaptureOptions::Inject());
  }).mean_ms;
  SPJAPushdown push;
  push.skip_cols = {tpch::kLShipmode, tpch::kLShipinstruct};
  double skip_ms = bench::Measure(opts, [&] {
    SPJAExec(q1, CaptureOptions::Inject(), &push);
  }).mean_ms;
  auto base = SPJAExec(q1, CaptureOptions::Inject());
  auto skip_base = SPJAExec(q1, CaptureOptions::Inject(), &push);
  bench::Row("fig10", "capture,mode=Baseline,ms=" + bench::F(base_ms));
  bench::Row("fig10", "capture,mode=Smoke-I,ms=" + bench::F(inject_ms) +
                          ",overhead_x=" +
                          bench::F((inject_ms - base_ms) / base_ms) + "," +
                          bench::LineageBytesKv(base.lineage));
  bench::Row("fig10",
             "capture,mode=Smoke-I+Skip,ms=" + bench::F(skip_ms) +
                 ",overhead_x=" + bench::F((skip_ms - base_ms) / base_ms) +
                 ",lineage_bytes=" +
                 std::to_string(skip_base.lineage.MemoryBytes() +
                                skip_base.skip_index.MemoryBytes()));
  const size_t total_rows = db.lineitem.num_rows();

  // Every (shipmode, shipinstruct) combination x every Q1 output group.
  // CI quick mode samples one combination and two groups.
  std::vector<std::string> modes = tpch::ShipModes();
  std::vector<std::string> instrs = tpch::ShipInstructs();
  if (opts.smoke) {
    modes.resize(1);
    instrs.resize(1);
  }
  for (const std::string& mode : modes) {
    for (const std::string& instr : instrs) {
      ConsumingSpec q1b = tpch::MakeQ1b(db, mode, instr);
      uint32_t code =
          skip_base.skip_dict.CodeForString(mode + std::string("\x1f") + instr);
      const size_t num_groups =
          opts.smoke ? std::min<size_t>(2, base.output.num_rows())
                     : base.output.num_rows();
      for (rid_t oid = 0; oid < num_groups; ++oid) {
        const RidVec& rids =
            base.lineage.input(0).backward.index().list(oid);
        double selectivity = static_cast<double>(rids.size()) /
                             static_cast<double>(total_rows) /
                             (7.0 * 4.0);  // one of 28 partitions

        auto lazy_preds = LazyBackwardPredicates(q1, base.output, oid);
        RunStats lazy = bench::Measure(opts, [&] {
          ConsumingLazy(db.lineitem, lazy_preds, q1b,
                        /*capture_lineage=*/false);
        });
        RunStats indexed = bench::Measure(opts, [&] {
          ConsumingOverRids(db.lineitem, q1b, rids,
                            /*capture_lineage=*/false);
        });
        RunStats skipping = bench::Measure(opts, [&] {
          ConsumingSkipping(db.lineitem, skip_base.skip_index, oid, code,
                            q1b, /*capture_lineage=*/false);
        });
        // The unified consumption path: the same consuming query compiled
        // to a Trace → Select → Derive → GroupBy plan (query/trace_builder)
        // under the indexed and skipping physical choices. Regressions of
        // the plan-compiled path show up next to the legacy kernels.
        TraceSource src = TraceSource::FromSpja(q1, base, "q1");
        TraceSource skip_src = TraceSource::FromSpja(q1, skip_base, "q1skip");
        bench::Row("fig10",
                   "mode=" + mode + ",instr=" + instr + ",group=" +
                       std::to_string(oid) + ",selectivity=" +
                       bench::F(selectivity) + ",lazy_ms=" +
                       bench::F(lazy.mean_ms) + ",no_skip_ms=" +
                       bench::F(indexed.mean_ms) + ",skip_ms=" +
                       bench::F(skipping.mean_ms));
        // One row per rewriter setting: regressions of the optimized
        // plan-compiled path show up as optimizer=on drifting off the
        // optimizer=off series.
        for (bool optimize : {true, false}) {
          LineageQuery plan_indexed;
          SMOKE_CHECK(TraceBuilder::Backward(src, "lineitem", {oid})
                          .Consuming(q1b)
                          .Strategy(TraceStrategy::kIndexed)
                          .Optimize(optimize)
                          .Compile(&plan_indexed)
                          .ok());
          RunStats plan_ix = bench::Measure(opts, [&] {
            PlanResult pr;
            SMOKE_CHECK(
                plan_indexed.Execute(CaptureOptions::None(), &pr).ok());
          });
          LineageQuery plan_skipping;
          SMOKE_CHECK(TraceBuilder::Backward(skip_src, "lineitem", {oid})
                          .Consuming(q1b)
                          .Strategy(TraceStrategy::kSkipping)
                          .Optimize(optimize)
                          .Compile(&plan_skipping)
                          .ok());
          RunStats plan_sk = bench::Measure(opts, [&] {
            PlanResult pr;
            SMOKE_CHECK(
                plan_skipping.Execute(CaptureOptions::None(), &pr).ok());
          });
          bench::Row("fig10",
                     "mode=" + mode + ",instr=" + instr + ",group=" +
                         std::to_string(oid) + ",optimizer=" +
                         (optimize ? "on" : "off") + ",plan_indexed_ms=" +
                         bench::F(plan_ix.mean_ms) + ",plan_skip_ms=" +
                         bench::F(plan_sk.mean_ms));
        }
      }
    }
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
