// Figure 10: lineage consuming query latency (TPC-H Q1b: Q1a plus two
// parameterized text predicates) vs query selectivity, for Lazy (full table
// scan), No Data Skipping (secondary index scan over the backward index)
// and Data Skipping (scan only the matching rid partition). Expected shape:
// skipping is below the 150ms interactive threshold everywhere and at least
// ~2x better than Lazy even at high selectivity; plain indexes win at low
// selectivity but are bottlenecked by secondary scan costs for large
// groups. Also reports the capture cost of partitioning (paper: 0.22x
// without vs 1.65x with skipping on Q1).
#include "harness.h"

#include "engine/spja.h"
#include "query/consuming.h"
#include "query/lazy.h"
#include "workloads/tpch.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  const double sf = opts.scale > 0 ? opts.scale : (opts.full ? 1.0 : 0.1);
  bench::Banner("Figure 10",
                "Data skipping: Q1b consuming-query latency vs selectivity");
  std::printf("scale factor %.2f\n", sf);
  tpch::Database db = tpch::Generate(sf);
  SPJAQuery q1 = tpch::MakeQ1(db);

  // Capture cost: Smoke-I vs Smoke-I + skip partitioning.
  double base_ms = bench::Measure(opts, [&] {
    SPJAExec(q1, CaptureOptions::None());
  }).mean_ms;
  double inject_ms = bench::Measure(opts, [&] {
    SPJAExec(q1, CaptureOptions::Inject());
  }).mean_ms;
  SPJAPushdown push;
  push.skip_cols = {tpch::kLShipmode, tpch::kLShipinstruct};
  double skip_ms = bench::Measure(opts, [&] {
    SPJAExec(q1, CaptureOptions::Inject(), &push);
  }).mean_ms;
  bench::Row("fig10", "capture,mode=Baseline,ms=" + bench::F(base_ms));
  bench::Row("fig10", "capture,mode=Smoke-I,ms=" + bench::F(inject_ms) +
                          ",overhead_x=" +
                          bench::F((inject_ms - base_ms) / base_ms));
  bench::Row("fig10", "capture,mode=Smoke-I+Skip,ms=" + bench::F(skip_ms) +
                          ",overhead_x=" +
                          bench::F((skip_ms - base_ms) / base_ms));

  auto base = SPJAExec(q1, CaptureOptions::Inject());
  auto skip_base = SPJAExec(q1, CaptureOptions::Inject(), &push);
  const size_t total_rows = db.lineitem.num_rows();

  // Every (shipmode, shipinstruct) combination x every Q1 output group.
  for (const std::string& mode : tpch::ShipModes()) {
    for (const std::string& instr : tpch::ShipInstructs()) {
      ConsumingSpec q1b = tpch::MakeQ1b(db, mode, instr);
      uint32_t code =
          skip_base.skip_dict.CodeForString(mode + std::string("\x1f") + instr);
      for (rid_t oid = 0; oid < base.output.num_rows(); ++oid) {
        const RidVec& rids =
            base.lineage.input(0).backward.index().list(oid);
        double selectivity = static_cast<double>(rids.size()) /
                             static_cast<double>(total_rows) /
                             (7.0 * 4.0);  // one of 28 partitions

        auto lazy_preds = LazyBackwardPredicates(q1, base.output, oid);
        RunStats lazy = bench::Measure(opts, [&] {
          ConsumingLazy(db.lineitem, lazy_preds, q1b,
                        /*capture_lineage=*/false);
        });
        RunStats indexed = bench::Measure(opts, [&] {
          ConsumingOverRids(db.lineitem, q1b, rids,
                            /*capture_lineage=*/false);
        });
        RunStats skipping = bench::Measure(opts, [&] {
          ConsumingSkipping(db.lineitem, skip_base.skip_index, oid, code,
                            q1b, /*capture_lineage=*/false);
        });
        bench::Row("fig10",
                   "mode=" + mode + ",instr=" + instr + ",group=" +
                       std::to_string(oid) + ",selectivity=" +
                       bench::F(selectivity) + ",lazy_ms=" +
                       bench::F(lazy.mean_ms) + ",no_skip_ms=" +
                       bench::F(indexed.mean_ms) + ",skip_ms=" +
                       bench::F(skipping.mean_ms));
      }
    }
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
