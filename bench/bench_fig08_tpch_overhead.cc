// Figure 8: relative lineage capture overhead on TPC-H Q1, Q3, Q10, Q12.
// Paper (SF1): Smoke-I at most ~22% overhead; Logic-Idx 41%-511%, worst on
// Q1 whose high-selectivity predicate maximizes the denormalized lineage
// graph. Smoke-D is slower than Smoke-I but faster than logical capture.
#include "harness.h"

#include "engine/spja.h"
#include "workloads/tpch.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  const double sf = opts.scale > 0 ? opts.scale : (opts.full ? 1.0 : 0.1);
  bench::Banner("Figure 8",
                "TPC-H lineage capture relative overhead (Smoke-I vs "
                "Logic-Idx; Smoke-D included)");
  std::printf("scale factor %.2f\n", sf);
  tpch::Database db = tpch::Generate(sf);

  struct NamedQuery {
    const char* name;
    SPJAQuery query;
  };
  NamedQuery queries[] = {{"Q1", tpch::MakeQ1(db)},
                          {"Q3", tpch::MakeQ3(db)},
                          {"Q10", tpch::MakeQ10(db)},
                          {"Q12", tpch::MakeQ12(db)}};

  for (auto& nq : queries) {
    double baseline_ms = 0;
    for (CaptureMode m : {CaptureMode::kNone, CaptureMode::kInject,
                          CaptureMode::kDefer, CaptureMode::kLogicIdx}) {
      RunStats s = bench::Measure(
          opts, [&] { SPJAExec(nq.query, CaptureOptions::Mode(m)); });
      if (m == CaptureMode::kNone) baseline_ms = s.mean_ms;
      double overhead_pct =
          baseline_ms > 0 ? 100.0 * (s.mean_ms - baseline_ms) / baseline_ms
                          : 0;
      bench::Row("fig08", std::string("query=") + nq.name + ",mode=" +
                              CaptureModeName(m) + ",ms=" +
                              bench::F(s.mean_ms) + ",overhead_pct=" +
                              bench::F(overhead_pct));
    }
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
