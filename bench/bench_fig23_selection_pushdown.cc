// Figure 23 (Appendix G.2): selection push-down on Q1's lineage capture
// with predicate l_tax < ? at varying selectivity. Expected shape: capture
// cost with push-down grows linearly with predicate selectivity, crossing
// plain Smoke-I at high selectivity (>~75%) where evaluating the predicate
// for every input outweighs the smaller lineage index.
#include "harness.h"

#include "engine/spja.h"
#include "workloads/tpch.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  const double sf = opts.scale > 0 ? opts.scale : (opts.full ? 1.0 : 0.1);
  bench::Banner("Figure 23",
                "Selection push-down capture latency vs predicate "
                "selectivity (l_tax < ?)");
  std::printf("scale factor %.2f\n", sf);
  tpch::Database db = tpch::Generate(sf);
  SPJAQuery q1 = tpch::MakeQ1(db);

  double base = bench::Measure(opts, [&] {
    SPJAExec(q1, CaptureOptions::None());
  }).mean_ms;
  double inject = bench::Measure(opts, [&] {
    SPJAExec(q1, CaptureOptions::Inject());
  }).mean_ms;
  bench::Row("fig23", "mode=Baseline,ms=" + bench::F(base));
  bench::Row("fig23", "mode=Smoke-I,ms=" + bench::F(inject));

  // l_tax is uniform over {0.00 .. 0.08}: threshold t keeps ~t/0.09.
  for (double cut : {0.01, 0.02, 0.04, 0.06, 0.08, 0.09}) {
    SPJAPushdown push;
    push.sel_fact = {Predicate::Double(tpch::kLTax, CmpOp::kLt, cut)};
    double ms = bench::Measure(opts, [&] {
      SPJAExec(q1, CaptureOptions::Inject(), &push);
    }).mean_ms;
    bench::Row("fig23", "mode=Pushdown,selectivity_pct=" +
                            bench::F(100.0 * cut / 0.09) + ",ms=" +
                            bench::F(ms));
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
