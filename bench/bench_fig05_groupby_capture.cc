// Figure 5: lineage capture cost of the group-by aggregation operator for
// all capture techniques, varying relation cardinality (columns) and number
// of distinct groups (rows). Expected shape: Smoke-I lowest overhead
// (~0.7x of baseline on average in the paper), Smoke-D slightly slower,
// Logic-* 1-2 orders worse (denormalized lineage graph), Phys-Mem ~2x+
// (virtual call per edge), Phys-Bdb worst by far (up to 250x).
#include "harness.h"

#include "baselines/bdb_sim.h"
#include "baselines/phys_mem.h"
#include "engine/group_by.h"
#include "plan/scheduler.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

GroupBySpec MicrobenchSpec() {
  using E = ScalarExpr;
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {
      AggSpec::Count("cnt"),
      AggSpec::Sum(E::Col(zipf_table::kV), "sum_v"),
      AggSpec::Sum(E::Mul(E::Col(zipf_table::kV), E::Col(zipf_table::kV)),
                   "sum_v2"),
      AggSpec::Sum(E::Sqrt(E::Col(zipf_table::kV)), "sum_sqrt_v"),
      AggSpec::Min(E::Col(zipf_table::kV), "min_v"),
      AggSpec::Max(E::Col(zipf_table::kV), "max_v"),
  };
  return spec;
}

void Run(const bench::Options& opts) {
  std::vector<size_t> sizes = opts.full
                                  ? std::vector<size_t>{100000, 1000000, 10000000}
                                  : std::vector<size_t>{100000, 1000000};
  std::vector<uint64_t> group_counts = {100, 10000};
  const std::vector<CaptureMode> modes = {
      CaptureMode::kNone,     CaptureMode::kInject,  CaptureMode::kDefer,
      CaptureMode::kLogicRid, CaptureMode::kLogicTup, CaptureMode::kPhysMem,
      CaptureMode::kPhysBdb};
  bench::Banner("Figure 5",
                "Group-by aggregation lineage capture latency (zipf theta=1)",
                modes);
  GroupBySpec spec = MicrobenchSpec();
  // Persistent pool so --threads=N runs never pay thread spawn inside the
  // timed region.
  MorselScheduler sched(opts.threads);

  for (size_t n : sizes) {
    for (uint64_t g : group_counts) {
      Table t = MakeZipfTable(n, g, 1.0);
      double baseline_ms = 0;
      for (CaptureMode m : modes) {
        // Phys-Bdb at 10M+ takes minutes per run; trim its reps.
        bench::Options local = opts;
        if (m == CaptureMode::kPhysBdb && n >= 1000000 && !opts.full) {
          local.runs = 1;
          local.warmups = 0;
        }
        RunStats s = bench::Measure(local, [&] {
          // --threads=N engages morsel-parallel capture on the Smoke modes.
          CaptureOptions co = opts.WithThreads(CaptureOptions::Mode(m));
          co.scheduler = &sched;
          PhysMemWriter mem_writer;
          BdbWriter bdb_writer;
          if (m == CaptureMode::kPhysMem) co.writer = &mem_writer;
          if (m == CaptureMode::kPhysBdb) co.writer = &bdb_writer;
          auto res = GroupByExec(t, "zipf", spec, co);
          if (m == CaptureMode::kDefer) {
            FinalizeDeferredGroupBy(&res, t, co);
          }
        });
        if (m == CaptureMode::kNone) baseline_ms = s.mean_ms;
        double overhead =
            baseline_ms > 0 ? (s.mean_ms - baseline_ms) / baseline_ms : 0;
        bench::Row("fig05", "n=" + std::to_string(n) +
                                ",groups=" + std::to_string(g) + ",mode=" +
                                CaptureModeName(m) + ",ms=" +
                                bench::F(s.mean_ms) + ",overhead_x=" +
                                bench::F(overhead));
      }
    }
  }

  // Section 6.1.1 "Cardinality Statistics": Smoke-I with exact per-group
  // counts (Smoke-I+TC) reduces capture overhead further.
  for (size_t n : sizes) {
    for (uint64_t g : group_counts) {
      Table t = MakeZipfTable(n, g, 1.0);
      CardinalityHints hints;
      hints.per_key_counts = CountPerKey(t, zipf_table::kZ);
      hints.have_per_key_counts = true;
      hints.expected_groups = g;
      CaptureOptions co = CaptureOptions::Inject();
      co.hints = &hints;
      RunStats s = bench::Measure(opts, [&] {
        GroupByExec(t, "zipf", spec, co);
      });
      bench::Row("fig05", "n=" + std::to_string(n) + ",groups=" +
                              std::to_string(g) +
                              ",mode=Smoke-I+TC,ms=" + bench::F(s.mean_ms));
    }
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::bench::Options opts = smoke::bench::Options::Parse(argc, argv);
  smoke::Run(opts);
  return 0;
}
