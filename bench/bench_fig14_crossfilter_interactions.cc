// Figure 14: per-interaction (1D brush) latency for each crossfilter view,
// against the 150ms interactive threshold. Expected shape: BT+FT under
// 150ms for essentially all interactions (paper: all but 5 of 8,100) and
// <10ms on the high-cardinality spatiotemporal views; BT above BT+FT; Lazy
// worst; interactions brushing bars whose lineage covers a large input
// fraction are the slow tail.
#include "harness.h"

#include <algorithm>

#include "apps/crossfilter.h"
#include "workloads/ontime.h"

namespace smoke {
namespace {

const char* kViewNames[] = {"LatLon", "Date", "DepDelay", "Carrier"};

void Run(const bench::Options& opts) {
  const size_t rows = opts.full ? 20000000 : 2000000;
  bench::Banner("Figure 14",
                "Per-interaction crossfilter latency by view (150ms line)");
  std::printf("rows=%zu (paper: 123.5M)\n", rows);
  Table data = ontime::Generate(rows);
  const std::vector<int> dims = {ontime::kLatLonBin, ontime::kDateBin,
                                 ontime::kDelayBin, ontime::kCarrier};

  struct Strategy {
    const char* name;
    Crossfilter::Strategy strategy;
    size_t sample;
  };
  const Strategy strategies[] = {
      {"Lazy", Crossfilter::Strategy::kLazy, 200},
      {"BT", Crossfilter::Strategy::kBT, 20},
      {"BT+FT", Crossfilter::Strategy::kBTFT, 1},
  };

  for (const Strategy& s : strategies) {
    Crossfilter cf(data, dims);
    cf.Initialize(s.strategy);
    for (size_t v = 0; v < cf.num_views(); ++v) {
      std::vector<double> lat;
      size_t over_150 = 0;
      for (size_t bar = 0; bar < cf.NumBars(v); bar += s.sample) {
        WallTimer t;
        cf.Brush(v, bar);
        double ms = t.ElapsedMs();
        lat.push_back(ms);
        over_150 += ms > 150.0;
      }
      std::sort(lat.begin(), lat.end());
      auto pct = [&](double p) {
        return lat[std::min(lat.size() - 1,
                            static_cast<size_t>(p * static_cast<double>(lat.size())))];
      };
      bench::Row(
          "fig14",
          std::string("mode=") + s.name + ",view=" + kViewNames[v] +
              ",interactions=" + std::to_string(lat.size()) + ",p50_ms=" +
              bench::F(pct(0.5)) + ",p95_ms=" + bench::F(pct(0.95)) +
              ",max_ms=" + bench::F(lat.back()) + ",over_150ms=" +
              std::to_string(over_150));
    }
  }
  std::printf("(DataCube responses are array lookups — effectively "
              "instantaneous, as in the paper; see Figure 13 for its build "
              "cost.)\n");
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
