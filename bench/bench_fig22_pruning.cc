// Figure 22 (Appendix G.2): lineage capture cost under input-relation
// pruning for TPC-H Q3 and Q10. Expected shape: capturing all tables costs
// the most; the left-most (smallest, highest-fanout) tables dominate the
// per-table overhead (Customer for Q3, Nation for Q10); Lineitem is the
// cheapest single table (pk-fk forward rid array).
#include "harness.h"

#include "engine/spja.h"
#include "workloads/tpch.h"

namespace smoke {
namespace {

void RunQuery(const bench::Options& opts, const char* qname,
              const SPJAQuery& q, const std::vector<std::string>& tables) {
  double none = bench::Measure(opts, [&] {
    SPJAExec(q, CaptureOptions::None());
  }).mean_ms;
  bench::Row("fig22", std::string("query=") + qname +
                          ",capture=NoCapture,ms=" + bench::F(none));
  for (const std::string& t : tables) {
    CaptureOptions co = CaptureOptions::Inject();
    co.only_relations = {t};
    double ms = bench::Measure(opts, [&] { SPJAExec(q, co); }).mean_ms;
    bench::Row("fig22", std::string("query=") + qname + ",capture=" + t +
                            ",ms=" + bench::F(ms));
  }
  double all = bench::Measure(opts, [&] {
    SPJAExec(q, CaptureOptions::Inject());
  }).mean_ms;
  bench::Row("fig22", std::string("query=") + qname + ",capture=All,ms=" +
                          bench::F(all));
}

void Run(const bench::Options& opts) {
  const double sf = opts.scale > 0 ? opts.scale : (opts.full ? 1.0 : 0.1);
  bench::Banner("Figure 22",
                "Input-relation pruning: capture cost per captured table");
  std::printf("scale factor %.2f\n", sf);
  tpch::Database db = tpch::Generate(sf);
  auto q3 = tpch::MakeQ3(db);
  RunQuery(opts, "Q3", q3, {"customer", "orders", "lineitem"});
  auto q10 = tpch::MakeQ10(db);
  RunQuery(opts, "Q10", q10, {"nation", "customer", "orders", "lineitem"});
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
