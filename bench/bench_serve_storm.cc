// Serving storm: N concurrent sessions brush retained crossfilter views
// while a background writer keeps replacing the base table (snapshot
// rebuilds at batch priority). Reports per-brush latency percentiles and
// writer throughput against session count — the scaling story of the
// serving core: brush p99 should hold near-interactive while the writer
// continuously publishes new versions, since brushes admit at interactive
// priority and never block on (or corrupt against) in-flight rebuilds.
#include "harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "serve/serve_core.h"
#include "serve/session.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

constexpr uint64_t kGroups = 16;

LogicalPlan ByZPlan(const Table* t) {
  PlanBuilder b;
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v")};
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.GroupBy(b.Scan(t, "zipf"), spec), &plan).ok());
  return plan;
}

LogicalPlan HotZPlan(const Table* t) {
  PlanBuilder b;
  int sel = b.Select(b.Scan(t, "zipf"),
                     {Predicate::Double(zipf_table::kV, CmpOp::kLt, 50.0)});
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt")};
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.GroupBy(sel, spec), &plan).ok());
  return plan;
}

ServeCore::ViewDef DefOf(LogicalPlan (*maker)(const Table*)) {
  return [maker](const SmokeEngine& engine, LogicalPlan* plan) {
    const Table* t = nullptr;
    SMOKE_RETURN_NOT_OK(engine.GetTable("zipf", &t));
    *plan = maker(t);
    return Status::OK();
  };
}

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const size_t i =
      static_cast<size_t>(p * static_cast<double>(sorted_ms->size() - 1));
  return (*sorted_ms)[i];
}

void RunStorm(const bench::Options& opts, size_t rows, int num_sessions,
              double duration_ms) {
  ServeOptions serve_opts;
  serve_opts.num_threads = opts.threads;
  serve_opts.view_capture.morsel_rows = 4096;  // multi-morsel rebuilds
  ServeCore core("zipf", serve_opts);
  SMOKE_CHECK(core.CreateTable("zipf", MakeZipfTable(rows, kGroups, 1.0)).ok());
  SMOKE_CHECK(core.DefineView("by_z", DefOf(ByZPlan)).ok());
  SMOKE_CHECK(core.DefineView("hot_z", DefOf(HotZPlan)).ok());
  SMOKE_CHECK(core.Start().ok());

  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(num_sessions));

  std::vector<std::thread> brushers;
  for (int s = 0; s < num_sessions; ++s) {
    brushers.emplace_back([&, s] {
      std::shared_ptr<ServeSession> session;
      SMOKE_CHECK(
          core.OpenSession("storm" + std::to_string(s), &session).ok());
      std::mt19937 rng(static_cast<uint32_t>(7 + s));
      std::uniform_int_distribution<rid_t> bar(0, 3);
      std::uniform_int_distribution<int> view(0, 1);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        WallTimer t;
        ServeSession::BrushResult r;
        SMOKE_CHECK(
            session->Brush(view(rng) == 0 ? "by_z" : "hot_z", bar(rng), &r)
                .ok());
        latencies[static_cast<size_t>(s)].push_back(t.ElapsedMs());
        // Every 16th brush cycles a retained trace: exercises the
        // pin-a-retired-version path under the storm.
        if (++n % 16 == 0) {
          (void)session->DropRetainedTrace("hot");
          SMOKE_CHECK(
              session->RetainBackwardTrace("hot", "by_z", {bar(rng)}).ok());
        }
      }
    });
  }

  std::atomic<uint64_t> replaces{0};
  std::thread writer([&] {
    uint64_t wave = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      SMOKE_CHECK(
          core.ReplaceTable("zipf", MakeZipfTable(rows, kGroups, 1.0,
                                                  /*seed=*/42 + wave))
              .ok());
      ++wave;
      replaces.fetch_add(1, std::memory_order_relaxed);
    }
  });

  WallTimer wall;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(duration_ms)));
  stop = true;
  for (auto& t : brushers) t.join();
  writer.join();
  const double elapsed_s = wall.ElapsedMs() / 1000.0;

  std::vector<double> all;
  for (const auto& per_session : latencies) {
    all.insert(all.end(), per_session.begin(), per_session.end());
  }
  const double p50 = Percentile(&all, 0.50);
  const double p99 = Percentile(&all, 0.99);

  for (int s = 0; s < num_sessions; ++s) {
    SMOKE_CHECK(core.CloseSession("storm" + std::to_string(s)).ok());
  }
  const auto admission = core.AdmissionStats();
  const auto epochs = core.EpochStats();
  bench::Row(
      "serve_storm",
      "sessions=" + std::to_string(num_sessions) +
          ",threads=" + std::to_string(opts.threads) +
          ",rows=" + std::to_string(rows) +
          ",brushes=" + std::to_string(all.size()) +
          ",brush_per_s=" +
          bench::F(static_cast<double>(all.size()) / elapsed_s) +
          ",p50_ms=" + bench::F(p50) + ",p99_ms=" + bench::F(p99) +
          ",replaces=" + std::to_string(replaces.load()) +
          ",writer_tables_per_s=" +
          bench::F(static_cast<double>(replaces.load()) / elapsed_s) +
          ",interactive_jobs=" + std::to_string(admission.interactive.jobs) +
          ",interactive_max_wait_ms=" +
          bench::F(admission.interactive.max_wait_ms) +
          ",batch_tasks=" + std::to_string(admission.batch.tasks) +
          ",batch_max_queue=" +
          std::to_string(admission.batch.max_queue_depth) +
          ",snapshots_reclaimed=" + std::to_string(epochs.reclaimed) +
          ",live_snapshots=" + std::to_string(core.LiveSnapshots()));
}

void Run(const bench::Options& opts) {
  const size_t rows = opts.full ? 2000000 : (opts.smoke ? 20000 : 200000);
  const double duration_ms = opts.full ? 3000 : (opts.smoke ? 200 : 1000);
  bench::Banner("Serving storm",
                "concurrent sessions brushing retained views vs a background "
                "writer replacing the base table (snapshot serving + tiered "
                "admission)");
  std::printf("rows=%zu pool_threads=%d duration_ms=%.0f\n", rows,
              opts.threads, duration_ms);

  std::vector<int> sweep = {1, opts.sessions / 2, opts.sessions};
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
  for (int n : sweep) {
    if (n < 1) continue;
    RunStorm(opts, rows, n, duration_ms);
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
