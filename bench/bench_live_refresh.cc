// Live refresh: incremental view maintenance vs. full recompute as the
// delta/table ratio shrinks. A zipf group-by view is retained with refresh
// state over a growing base table; per batch we measure (a) the refresh
// latency of folding the delta through the retained plan (src/refresh/) and
// (b) recomputing the view from scratch over the accumulated table. The
// headline property: refresh latency scales with the DELTA size while
// recompute scales with the TABLE size, so the speedup widens as the table
// grows — the release canary asserts refresh wins at small deltas.
#include "harness.h"

#include <string>
#include <vector>

#include "core/smoke_engine.h"
#include "refresh/refresh.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

constexpr uint64_t kGroups = 64;

GroupBySpec ZipfSpec() {
  GroupBySpec spec;
  spec.keys = {zipf_table::kZ};
  spec.aggs = {AggSpec::Count("cnt"),
               AggSpec::Sum(ScalarExpr::Col(zipf_table::kV), "sum_v"),
               AggSpec::Avg(ScalarExpr::Col(zipf_table::kV), "avg_v")};
  return spec;
}

LogicalPlan ViewPlan(const Table* t) {
  PlanBuilder b;
  int sel = b.Select(b.Scan(t, "zipf"),
                     {Predicate::Double(zipf_table::kV, CmpOp::kLt, 75.0)});
  LogicalPlan plan;
  SMOKE_CHECK(b.Build(b.GroupBy(sel, ZipfSpec()), &plan).ok());
  return plan;
}

/// One series point: a table of `base_rows` with one retained live view,
/// then `batches` appends of `delta_rows` each. Reports per-batch refresh
/// latency, the matching full-recompute latency over the accumulated table,
/// and the refresh stats (rows scanned, groups touched, index bytes).
void RunSeries(const bench::Options& opts, size_t base_rows,
               size_t delta_rows, int batches, LineageCodec codec) {
  const char* codec_name = codec == LineageCodec::kRaw ? "raw" : "adaptive";
  for (int run = 0; run < opts.runs + opts.warmups; ++run) {
    const bool timed = run >= opts.warmups;

    SmokeEngine engine;
    SMOKE_CHECK(
        engine.CreateTable("zipf", MakeZipfTable(base_rows, kGroups, 1.0, 7))
            .ok());
    const Table* t = nullptr;
    SMOKE_CHECK(engine.GetTable("zipf", &t).ok());
    CaptureOptions copts = opts.WithThreads(CaptureOptions::Inject());
    copts.retain_refresh_state = true;
    copts.lineage_codec = codec;
    SMOKE_CHECK(engine.ExecutePlan("live", ViewPlan(t), copts).ok());

    Table full = *t;  // mirror for the from-scratch comparison runs
    for (int batch = 0; batch < batches; ++batch) {
      Table delta = MakeZipfTable(delta_rows, kGroups, 0.8,
                                  100 + static_cast<uint64_t>(batch));
      for (size_t r = 0; r < delta.num_rows(); ++r) {
        full.AppendRowFrom(delta, static_cast<rid_t>(r));
      }

      std::vector<RefreshStats> stats;
      WallTimer refresh_t;
      SMOKE_CHECK(engine.AppendRows("zipf", delta, &stats).ok());
      const double refresh_ms = refresh_t.ElapsedMs();
      SMOKE_CHECK(stats.size() == 1 && stats[0].incremental);

      WallTimer recompute_t;
      PlanResult scratch;
      SMOKE_CHECK(ExecutePlan(ViewPlan(&full),
                              opts.WithThreads(CaptureOptions::Inject()),
                              &scratch)
                      .ok());
      const double recompute_ms = recompute_t.ElapsedMs();

      if (!timed) continue;
      bench::Row(
          "live_refresh",
          "series=refresh_vs_recompute,codec=" + std::string(codec_name) +
              ",base_rows=" + std::to_string(base_rows) +
              ",delta_rows=" + std::to_string(delta_rows) +
              ",batch=" + std::to_string(batch) +
              ",table_rows=" + std::to_string(full.num_rows()) +
              ",refresh_ms=" + bench::F(refresh_ms) +
              ",recompute_ms=" + bench::F(recompute_ms) +
              ",speedup=" + bench::F(recompute_ms / refresh_ms) +
              ",rows_scanned=" + std::to_string(stats[0].rows_scanned) +
              ",groups_touched=" + std::to_string(stats[0].groups_touched) +
              ",new_groups=" + std::to_string(stats[0].new_groups) +
              ",index_bytes_appended=" +
              std::to_string(stats[0].index_bytes_appended) + "," +
              bench::LineageKv(engine));
    }
  }
}

void Run(const bench::Options& opts) {
  bench::Banner("live_refresh",
                "incremental view refresh latency vs delta size vs full "
                "recompute (retained zipf group-by view)");
  const size_t base = opts.full ? 5'000'000 : (opts.smoke ? 20'000 : 500'000);
  const int batches = opts.append_batches > 0 ? opts.append_batches : 3;
  // Delta sweep: refresh cost should track this axis, not the table size.
  std::vector<size_t> deltas;
  if (opts.smoke) {
    deltas = {200, 2'000};
  } else if (opts.full) {
    deltas = {1'000, 10'000, 100'000, 1'000'000};
  } else {
    deltas = {500, 5'000, 50'000};
  }
  for (LineageCodec codec : {LineageCodec::kRaw, LineageCodec::kAdaptive}) {
    for (size_t d : deltas) RunSeries(opts, base, d, batches, codec);
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::bench::Options opts = smoke::bench::Options::Parse(argc, argv);
  smoke::Run(opts);
  return 0;
}
