// Ablation (google-benchmark): the cost of writing one lineage edge through
// each mechanism the paper compares — inline append (Smoke, P1 tight
// integration), a virtual function call into an in-memory subsystem
// (Phys-Mem), and a marshalled B-tree insert (Phys-Bdb). This isolates why
// the physical baselines lose: the write path itself, independent of any
// operator logic.
#include <benchmark/benchmark.h>

#include "baselines/bdb_sim.h"
#include "baselines/phys_mem.h"
#include "common/rid_vec.h"

namespace smoke {
namespace {

constexpr size_t kGroups = 1000;

void BM_InlineAppend(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<RidVec> lists(kGroups);
    for (size_t i = 0; i < n; ++i) {
      lists[i % kGroups].PushBack(static_cast<rid_t>(i));
    }
    benchmark::DoNotOptimize(lists.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_InlineAppend)->Arg(100000)->Arg(1000000);

void BM_VirtualEmit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    PhysMemWriter writer(/*backward=*/true, /*forward=*/false);
    LineageWriter* iface = &writer;
    iface->BeginCapture(n);
    for (size_t i = 0; i < n; ++i) {
      iface->Emit(static_cast<rid_t>(i % kGroups), static_cast<rid_t>(i));
    }
    iface->FinishCapture(kGroups);
    benchmark::DoNotOptimize(writer.num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_VirtualEmit)->Arg(100000)->Arg(1000000);

void BM_BdbInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    BdbWriter writer(/*backward=*/true, /*forward=*/false);
    LineageWriter* iface = &writer;
    for (size_t i = 0; i < n; ++i) {
      iface->Emit(static_cast<rid_t>(i % kGroups), static_cast<rid_t>(i));
    }
    benchmark::DoNotOptimize(writer.backward_db()->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BdbInsert)->Arg(100000)->Arg(1000000);

// Read side: secondary-index trace vs B-tree cursor fetch.
void BM_IndexTrace(benchmark::State& state) {
  const size_t n = 1000000;
  std::vector<RidVec> lists(kGroups);
  for (size_t i = 0; i < n; ++i) {
    lists[i % kGroups].PushBack(static_cast<rid_t>(i));
  }
  size_t g = 0;
  for (auto _ : state) {
    uint64_t acc = 0;
    for (rid_t r : lists[g % kGroups]) acc += r;
    benchmark::DoNotOptimize(acc);
    ++g;
  }
}
BENCHMARK(BM_IndexTrace);

void BM_BdbCursorFetch(benchmark::State& state) {
  const size_t n = 1000000;
  BdbWriter writer(true, false);
  for (size_t i = 0; i < n; ++i) {
    writer.Emit(static_cast<rid_t>(i % kGroups), static_cast<rid_t>(i));
  }
  size_t g = 0;
  std::vector<rid_t> rids;
  for (auto _ : state) {
    rids.clear();
    writer.FetchBackward(static_cast<rid_t>(g % kGroups), &rids);
    benchmark::DoNotOptimize(rids.data());
    ++g;
  }
}
BENCHMARK(BM_BdbCursorFetch);

}  // namespace
}  // namespace smoke

BENCHMARK_MAIN();
