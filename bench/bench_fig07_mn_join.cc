// Figure 7: M:N join capture over highly skewed inputs (left 1000 rows;
// output not materialized, so the measurement isolates instrumentation and
// rid-array resizing cost). Expected shape: Smoke-D (defer both of the left
// table's indexes) < Smoke-D-DeferForw < Smoke-I, by up to ~2.65x; more
// left groups shrinks output cardinality and all costs.
#include "harness.h"

#include "engine/hash_join.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  const size_t left_n = 1000;
  std::vector<size_t> right_sizes =
      opts.full ? std::vector<size_t>{10000, 50000, 100000}
                : std::vector<size_t>{10000, 50000, 100000};
  bench::Banner("Figure 7",
                "M:N join capture latency (left 1000 rows, zipfian keys, "
                "output not materialized)");

  for (uint64_t lgroups : {10ULL, 100ULL}) {
    Table left = MakeZipfTable(left_n, lgroups, 1.0, 101);
    for (size_t rn : right_sizes) {
      Table right = MakeZipfTable(rn, 100, 1.0, 202);

      struct Variant {
        const char* name;
        JoinSpec::DeferVariant defer;
        CaptureMode mode;
      };
      const Variant variants[] = {
          {"Smoke-I", JoinSpec::DeferVariant::kBoth, CaptureMode::kInject},
          {"Smoke-D-DeferForw", JoinSpec::DeferVariant::kForwardOnly,
           CaptureMode::kDefer},
          {"Smoke-D", JoinSpec::DeferVariant::kBoth, CaptureMode::kDefer},
      };
      for (const Variant& v : variants) {
        JoinSpec spec;
        spec.left_key = zipf_table::kZ;
        spec.right_key = zipf_table::kZ;
        spec.materialize_output = false;
        spec.defer_variant = v.defer;
        RunStats s = bench::Measure(opts, [&] {
          HashJoinExec(left, "left", right, "right", spec,
                       CaptureOptions::Mode(v.mode));
        });
        bench::Row("fig07", "left_groups=" + std::to_string(lgroups) +
                                ",right_n=" + std::to_string(rn) + ",mode=" +
                                v.name + ",ms=" + bench::F(s.mean_ms));
      }
    }
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
