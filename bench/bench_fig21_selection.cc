// Figure 21 (Appendix G.1): instrumented selection latency with and without
// selectivity estimates. SELECT * FROM zipf WHERE v < ?, varying estimated
// selectivity 1-50%. Expected shape: Smoke-I ~0.4x overhead; Smoke-I+EC
// (pre-allocating the backward rid array from the estimate) cuts it to
// ~0.15x; overestimating beats underestimating (resizing costs).
#include "harness.h"

#include "engine/select.h"
#include "workloads/zipf_table.h"

namespace smoke {
namespace {

void Run(const bench::Options& opts) {
  std::vector<size_t> sizes = opts.full
                                  ? std::vector<size_t>{1000000, 5000000}
                                  : std::vector<size_t>{1000000, 2000000};
  bench::Banner("Figure 21",
                "Selection capture latency with (Smoke-I+EC) and without "
                "(Smoke-I) selectivity estimates");

  for (size_t n : sizes) {
    Table t = MakeZipfTable(n, 100, 1.0);
    for (int sel_pct : {1, 5, 10, 20, 30, 40, 50}) {
      std::vector<Predicate> preds = {Predicate::Double(
          zipf_table::kV, CmpOp::kLt, static_cast<double>(sel_pct))};
      double base = bench::Measure(opts, [&] {
        SelectExec(t, "zipf", preds, CaptureOptions::None());
      }).mean_ms;
      double inject = bench::Measure(opts, [&] {
        SelectExec(t, "zipf", preds, CaptureOptions::Inject());
      }).mean_ms;
      // EC: the engine's estimate is v/100 (exact for uniform v).
      CardinalityHints hints;
      hints.selection_selectivity = static_cast<double>(sel_pct) / 100.0;
      CaptureOptions ec = CaptureOptions::Inject();
      ec.hints = &hints;
      double inject_ec = bench::Measure(opts, [&] {
        SelectExec(t, "zipf", preds, ec);
      }).mean_ms;
      bench::Row("fig21",
                 "n=" + std::to_string(n) + ",sel_pct=" +
                     std::to_string(sel_pct) + ",baseline_ms=" +
                     bench::F(base) + ",smoke_i_ms=" + bench::F(inject) +
                     ",smoke_i_ec_ms=" + bench::F(inject_ec) +
                     ",overhead_x=" + bench::F((inject - base) / base) +
                     ",overhead_ec_x=" + bench::F((inject_ec - base) / base));
    }
  }

  // Appendix G.1 finding: overestimation is safe, underestimation resizes.
  Table t = MakeZipfTable(2000000, 100, 1.0);
  std::vector<Predicate> preds = {
      Predicate::Double(zipf_table::kV, CmpOp::kLt, 30.0)};
  for (double est : {0.05, 0.15, 0.30, 0.60}) {
    CardinalityHints hints;
    hints.selection_selectivity = est;
    CaptureOptions ec = CaptureOptions::Inject();
    ec.hints = &hints;
    double ms = bench::Measure(opts, [&] {
      SelectExec(t, "zipf", preds, ec);
    }).mean_ms;
    bench::Row("fig21", "true_sel=0.30,estimate=" + bench::F(est) + ",ms=" +
                            bench::F(ms));
  }
}

}  // namespace
}  // namespace smoke

int main(int argc, char** argv) {
  smoke::Run(smoke::bench::Options::Parse(argc, argv));
  return 0;
}
