#!/usr/bin/env python3
"""Lint: every mutex member in src/ must be thread-safety annotated.

The Clang thread-safety analysis (-Wthread-safety) only checks what the
annotations in common/thread_annotations.h declare — an unannotated mutex
is invisible to it, so its guarded state silently escapes the gate. This
lint closes that hole: any member of type std::mutex, std::shared_mutex,
or smoke::Mutex declared in a header or source file under src/ must be
*referenced by* at least one SMOKE_* annotation (SMOKE_GUARDED_BY,
SMOKE_REQUIRES, SMOKE_EXCLUDES, SMOKE_ACQUIRE, ...) somewhere in the same
file or its .h/.cc pair.

Exempt: src/common/mutex.h itself (the annotated wrapper's internals) and
local variables (we only match member declarations ending in `_;`).

Exit status: 0 clean, 1 violations found (printed one per line as
file:line: message, so CI annotates them).
"""

import os
import re
import sys

SRC_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "src")

# Member declarations like:
#   std::mutex mu_;
#   mutable std::shared_mutex rw_lock_;
#   mutable Mutex latch_;          (smoke::Mutex, possibly unqualified)
MUTEX_DECL = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?:std::mutex|std::shared_mutex|(?:smoke::)?Mutex)\s+"
    r"(\w+_)\s*;")

# Any SMOKE_* annotation argument list, e.g. SMOKE_GUARDED_BY(mu_),
# SMOKE_REQUIRES(a_, b_), SMOKE_EXCLUDES(db_->latch_).
ANNOTATION_REF = re.compile(r"SMOKE_[A-Z_]+\(([^)]*)\)")

EXEMPT = {os.path.join("common", "mutex.h")}


def pair_of(relpath):
    """The other half of a .h/.cc pair, or None."""
    base, ext = os.path.splitext(relpath)
    if ext == ".h":
        return base + ".cc"
    if ext == ".cc":
        return base + ".h"
    return None


def annotation_refs(text):
    """All identifiers referenced inside SMOKE_* annotation arguments."""
    refs = set()
    for args in ANNOTATION_REF.findall(text):
        for tok in re.findall(r"\w+_", args):
            refs.add(tok)
    return refs


def main():
    violations = []
    files = {}
    for root, _dirs, names in os.walk(SRC_ROOT):
        for name in names:
            if name.endswith((".h", ".cc")):
                path = os.path.join(root, name)
                rel = os.path.relpath(path, SRC_ROOT)
                with open(path, encoding="utf-8") as f:
                    files[rel] = f.read()

    for rel, text in sorted(files.items()):
        if rel in EXEMPT:
            continue
        refs = annotation_refs(text)
        other = pair_of(rel)
        if other in files:
            refs |= annotation_refs(files[other])
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = MUTEX_DECL.match(line)
            if not m:
                continue
            member = m.group(1)
            if member not in refs:
                violations.append(
                    f"src/{rel}:{lineno}: mutex member `{member}` is not "
                    f"referenced by any SMOKE_* thread-safety annotation "
                    f"(add SMOKE_GUARDED_BY({member}) to the state it "
                    f"protects, or SMOKE_REQUIRES/SMOKE_EXCLUDES to the "
                    f"functions that lock it)")

    if violations:
        print("\n".join(violations))
        print(f"\ncheck_annotations: {len(violations)} unannotated mutex "
              f"member(s); see src/common/thread_annotations.h for "
              f"conventions", file=sys.stderr)
        return 1
    n = sum(1 for t in files.values()
            for line in t.splitlines() if MUTEX_DECL.match(line))
    print(f"check_annotations: OK ({n} mutex members, all referenced by "
          f"annotations)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
